//! Fault-injection tests over real TCP: a server configured with a
//! deterministic [`FaultPlan`](isex_engine::FaultPlan) must degrade
//! gracefully — isolate the panicking job, keep answering, report the
//! damage truthfully — and the transport layer must cut off slow or
//! oversized clients with `408`/`413` instead of hanging or ballooning.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use isex_engine::FaultPlan;
use isex_serve::client::{self, ClientError};
use isex_serve::{start, ExploreRequest, ServerConfig};
use serde::Value;

fn config(plan: Option<&str>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        fault_plan: plan.map(|spec| FaultPlan::parse(spec).expect("valid plan")),
        ..ServerConfig::default()
    }
}

fn quick(seed: u64, repeats: usize) -> ExploreRequest {
    ExploreRequest {
        seed,
        effort: 40,
        repeats,
        ..ExploreRequest::default()
    }
}

fn metrics(addr: &str) -> Value {
    let raw = client::get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(raw.status, 200, "{}", raw.body);
    serde_json::parse(&raw.body).expect("metrics JSON")
}

fn metric_u64(value: &Value, path: &[&str]) -> u64 {
    let mut current = value;
    for key in path {
        current = current
            .as_object()
            .unwrap_or_else(|| panic!("`{key}`: not an object"))
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no `{key}` in metrics"));
    }
    match current {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("{path:?}: expected integer, got {}", other.kind()),
    }
}

#[test]
fn injected_job_panic_is_isolated_and_reported() {
    // Block 0, repeat 0 panics; repeat 1 survives, so the run completes.
    let handle = start(config(Some("panic@0.0"))).expect("start server");
    let addr = handle.addr().to_string();

    let response = client::explore(&addr, &quick(0xFA117, 2)).expect("run survives the panic");
    assert!(!response.cached);
    assert_eq!(response.metrics.jobs_failed, 1, "exactly the planned job");
    assert!(response.metrics.worker_restarts >= 1);
    assert_eq!(
        response.metrics.jobs_completed + response.metrics.jobs_failed,
        response.metrics.jobs_total
    );
    assert!(
        response.metrics.block_failures.is_empty(),
        "one surviving repeat keeps the block alive"
    );

    // A damaged run must not poison the cache: the same request recomputes.
    let again = client::explore(&addr, &quick(0xFA117, 2)).expect("second run");
    assert!(
        !again.cached,
        "a run with failed jobs must never be served from cache"
    );

    let snap = metrics(&addr);
    assert!(metric_u64(&snap, &["engine", "jobs_failed"]) >= 2);
    assert!(metric_u64(&snap, &["engine", "worker_restarts"]) >= 2);
    assert_eq!(metric_u64(&snap, &["queue", "jobs_completed"]), 2);

    handle.shutdown();
}

#[test]
fn every_job_panicking_yields_structured_500_and_a_live_server() {
    let handle = start(config(Some("panic:1/1"))).expect("start server");
    let addr = handle.addr().to_string();

    // Two requests back to back: both must be *answered* (500 with the
    // structured cause), proving the worker survived the first disaster.
    for seed in [1u64, 2] {
        match client::explore(&addr, &quick(seed, 1)) {
            Err(ClientError::Http {
                status: 500,
                message,
                ..
            }) => {
                assert!(
                    message.contains("explored blocks failed")
                        && message.contains("injected fault"),
                    "cause must name the fault: {message}"
                );
            }
            other => panic!("expected structured 500, got {other:?}"),
        }
    }

    let raw = client::get(&addr, "/healthz").expect("healthz");
    assert_eq!(raw.status, 200, "server must still be alive");

    let snap = metrics(&addr);
    assert!(metric_u64(&snap, &["requests", "runs_failed"]) >= 2);
    assert!(metric_u64(&snap, &["queue", "jobs_failed"]) >= 2);
    assert_eq!(metric_u64(&snap, &["requests", "by_status", "500"]), 2);

    handle.shutdown();
}

#[test]
fn cancel_fault_is_answered_as_degraded_200() {
    // The injected cancellation trips the run's own token mid-run. Anytime
    // extraction turns that into a *partial* answer: a 200 whose report
    // carries `degraded: true` and per-block provenance — never a 500, and
    // never a cacheable result.
    let handle = start(config(Some("cancel@0.0"))).expect("start server");
    let addr = handle.addr().to_string();

    let response = client::explore(&addr, &quick(3, 1)).expect("partial answer, not an error");
    assert!(response.degraded, "envelope must carry degraded");
    assert!(response.report.degraded, "report must carry degraded");
    assert!(response.metrics.degraded);
    assert!(
        response
            .report
            .per_block
            .iter()
            .any(|b| b.degraded && b.rounds_completed.is_some()),
        "degraded blocks must carry rounds_completed provenance: {:?}",
        response.report.per_block
    );

    // A degraded answer must never enter any cache tier: the same request
    // with the fault still armed recomputes (and the server stays up).
    let again = client::explore(&addr, &quick(3, 1)).expect("second partial");
    assert!(!again.cached, "degraded results must not be cached");

    let raw = client::get(&addr, "/healthz").expect("healthz");
    assert_eq!(raw.status, 200);

    let snap = metrics(&addr);
    assert!(metric_u64(&snap, &["requests", "degraded_runs"]) >= 2);
    assert!(metric_u64(&snap, &["requests", "degraded_responses"]) >= 2);

    handle.shutdown();
}

/// A response is *well-formed* if it reads as a complete answer: the
/// report covers every explored block, job accounting adds up, and
/// degradation — when claimed — carries its provenance everywhere it is
/// contracted to appear.
fn assert_well_formed(response: &isex_serve::ExploreResponse, context: &str) {
    let report = &response.report;
    let metrics = &response.metrics;
    assert!(
        metrics.blocks_explored > 0,
        "{context}: an answered run explored nothing"
    );
    assert_eq!(
        report.explored_blocks, metrics.blocks_explored,
        "{context}: report and metrics must agree on the hot set"
    );
    assert!(
        report.per_block.len() >= metrics.blocks_explored,
        "{context}: per-block outcomes must cover at least the hot set"
    );
    assert_eq!(
        metrics.jobs_completed + metrics.jobs_failed + metrics.jobs_skipped,
        metrics.jobs_total,
        "{context}: job accounting must add up"
    );
    assert_eq!(
        response.degraded, metrics.degraded,
        "{context}: envelope and metrics must agree on degradation"
    );
    assert_eq!(
        report.degraded, metrics.degraded,
        "{context}: report and metrics must agree on degradation"
    );
    if response.degraded {
        assert!(
            report
                .per_block
                .iter()
                .filter(|b| b.degraded)
                .all(|b| b.rounds_completed.is_some()),
            "{context}: every degraded block needs rounds_completed provenance"
        );
        assert!(
            report.per_block.iter().any(|b| b.degraded),
            "{context}: a degraded report must name at least one cut block"
        );
    } else {
        assert!(
            report
                .per_block
                .iter()
                .all(|b| !b.degraded && b.rounds_completed.is_none()),
            "{context}: a full report must carry no degradation provenance"
        );
    }
    // The whole thing must survive a serialize/parse cycle — no field an
    // interrupted run left half-written.
    let json = serde_json::to_string(report).expect("report serializes");
    serde_json::parse(&json).expect("serialized report parses back");
}

#[test]
fn cancellation_point_sweep_every_answer_is_clean_or_complete() {
    // Sweep the cancel fault across densities and positions (different
    // plans trip the token at different cancellation points of the same
    // run), plus a wall-clock deadline doing the same nondeterministically.
    // The contract under every cut: a well-formed full or partial 200, or
    // a clean structured 503 — never a panic, a hang, or a half-written
    // response.
    for spec in [
        "cancel:1/1",
        "cancel:1/2",
        "cancel:1/3 seed:5",
        "cancel:2/3",
        "cancel@0.1",
        "cancel@1.0",
    ] {
        let handle = start(config(Some(spec))).expect("start server");
        let addr = handle.addr().to_string();
        match client::explore(&addr, &quick(0x5EE9, 2)) {
            Ok(response) => assert_well_formed(&response, spec),
            Err(ClientError::Http { status: 503, .. }) => {}
            other => panic!("{spec}: expected a clean answer, got {other:?}"),
        }
        // The server survives the cut and still answers.
        let raw = client::get(&addr, "/healthz").expect("healthz");
        assert_eq!(raw.status, 200, "{spec}: server died");
        handle.shutdown();
    }

    // Wall-clock flavor of the same sweep: tight-but-plausible budgets.
    let handle = start(config(None)).expect("start server");
    let addr = handle.addr().to_string();
    for timeout_ms in [300u64, 1_000, 120_000] {
        let request = ExploreRequest {
            timeout_ms: Some(timeout_ms),
            ..quick(0xDEAD1, 2)
        };
        match client::explore(&addr, &request) {
            Ok(response) => assert_well_formed(&response, &format!("timeout {timeout_ms}ms")),
            // 503 is the admission controller shedding; 504 is the
            // documented fallback when the engine overruns the grace
            // window between two cancellation points. Both are clean.
            Err(ClientError::Http {
                status: 503 | 504, ..
            }) => {}
            other => panic!("timeout {timeout_ms}ms: got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn cancel_plan_that_never_fires_pins_the_full_report() {
    // The fault's coordinates are outside the run's (block, repeat) space,
    // so the token never trips: the response must be bitwise the plain
    // `run_flow` answer with zero degradation residue — proof the anytime
    // machinery is pay-for-use.
    let handle = start(config(Some("cancel@9.9"))).expect("start server");
    let addr = handle.addr().to_string();
    let req = quick(0xF011, 2);
    let response = client::explore(&addr, &req).expect("uncancelled run");
    assert!(!response.degraded);
    assert_well_formed(&response, "cancel@9.9");
    let direct = isex_flow::run_flow(&req.flow_config(), &req.program(), req.seed);
    assert_eq!(
        serde_json::to_string(&response.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "a cancel plan that never fires must not change a byte"
    );
    handle.shutdown();
}

#[test]
fn slow_client_gets_408_within_the_read_timeout() {
    let cfg = ServerConfig {
        read_timeout_ms: 300,
        ..config(None)
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    // Send half a request head, then stall past the read timeout.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /v1/explore HTT")
        .expect("partial head");
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read 408");
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    assert!(response.contains("not received within 300ms"), "{response}");

    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["requests", "by_status", "408"]), 1);

    handle.shutdown();
}

#[test]
fn oversized_body_and_head_get_413() {
    let cfg = ServerConfig {
        max_body_bytes: 256,
        max_head_bytes: 512,
        ..config(None)
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    // Body over the cap: rejected from the Content-Length declaration
    // alone, before any body bytes are read — so only the head is sent
    // (the server closes immediately; a full client write would race a
    // broken pipe against the 413).
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /v1/explore HTTP/1.1\r\ncontent-length: 1024\r\n\r\n")
        .expect("write head");
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.read_to_string(&mut response).expect("read 413");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    assert!(response.contains("256-byte cap"), "{response}");

    // Head over the cap: same verdict, different limb. The client may see
    // the 413 or a reset (the server closes with unread bytes pending, so
    // the kernel may RST); the server-side status counter is authoritative.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let head = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "a".repeat(2048)
    );
    stream.write_all(head.as_bytes()).expect("write head");
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    if stream.read_to_string(&mut response).is_ok() && !response.is_empty() {
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    }
    drop(stream);

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if metric_u64(&metrics(&addr), &["requests", "by_status", "413"]) == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never counted the second 413"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    handle.shutdown();
}

#[test]
fn fault_free_requests_are_unaffected_by_queued_faulty_ones() {
    // A plan that only delays: results must be bitwise identical to a
    // clean run — injection may cost time, never answers.
    let handle = start(config(Some("delay:1/2:5ms"))).expect("start server");
    let addr = handle.addr().to_string();

    let req = quick(0xC1EA4, 2);
    let served = client::explore(&addr, &req).expect("explore");
    let direct = isex_flow::run_flow(&req.flow_config(), &req.program(), req.seed);
    assert_eq!(
        serde_json::to_string(&served.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "delay faults must not change the answer"
    );
    assert_eq!(served.metrics.jobs_failed, 0);
    assert!(served.metrics.block_failures.is_empty());

    handle.shutdown();
}
