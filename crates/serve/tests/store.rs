//! End-to-end tests of the async job tier and the persistent result store:
//! every test binds `127.0.0.1:0` and talks to a full server over TCP.
//!
//! Coverage follows the contract:
//! * a stored result survives a server restart and is byte-identical to a
//!   direct `run_flow` of the same request;
//! * two live replicas sharing one `--store-dir` share answers;
//! * N concurrent identical explorations coalesce into ONE engine run;
//! * damaged runs (injected panics, cancellations) never persist;
//! * the `/v1/jobs` lifecycle: submit → wait → done, cache-tier admission;
//! * `405` responses carry an `Allow` header (checked over raw TCP).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use isex_engine::FaultPlan;
use isex_serve::client;
use isex_serve::{start, ExploreRequest, ServerConfig};
use serde::Value;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "isex-serve-store-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(store_dir: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir,
        ..ServerConfig::default()
    }
}

fn quick(seed: u64) -> ExploreRequest {
    ExploreRequest {
        seed,
        effort: 40,
        repeats: 2,
        ..ExploreRequest::default()
    }
}

fn metrics(addr: &str) -> Value {
    let raw = client::get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(raw.status, 200, "{}", raw.body);
    serde_json::parse(&raw.body).expect("metrics JSON")
}

fn metric_u64(value: &Value, path: &[&str]) -> u64 {
    let mut current = value;
    for key in path {
        current = current
            .as_object()
            .unwrap_or_else(|| panic!("`{key}`: not an object"))
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no `{key}` in metrics"));
    }
    match current {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("{path:?}: expected integer, got {}", other.kind()),
    }
}

#[test]
fn stored_result_survives_restart_bitwise() {
    let dir = tmp_dir("restart");
    let req = quick(0x5707E);

    // First server: a fresh run that lands in the store.
    let first = {
        let handle = start(config(Some(dir.clone()))).expect("start server 1");
        let addr = handle.addr().to_string();
        let response = client::explore(&addr, &req).expect("first explore");
        assert_eq!(response.source, "run");
        let snap = metrics(&addr);
        assert_eq!(metric_u64(&snap, &["store", "inserts"]), 1);
        handle.shutdown();
        response
    };

    // Second server, same directory, cold memory cache: the answer must
    // come from the disk store.
    let handle = start(config(Some(dir.clone()))).expect("start server 2");
    let addr = handle.addr().to_string();
    let second = client::explore(&addr, &req).expect("explore after restart");
    assert!(second.cached, "must not recompute");
    assert_eq!(second.source, "store");
    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["phases", "store.hit", "count"]), 1);
    assert_eq!(metric_u64(&snap, &["queue", "jobs_completed"]), 0);
    handle.shutdown();

    // Byte-identical across the restart AND against a direct local run.
    let served = serde_json::to_string(&second.report).unwrap();
    assert_eq!(served, serde_json::to_string(&first.report).unwrap());
    let direct = isex_flow::run_flow(&req.flow_config(), &req.program(), req.seed);
    assert_eq!(served, serde_json::to_string(&direct).unwrap());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_replicas_share_one_store_directory() {
    let dir = tmp_dir("replicas");
    let req = quick(0x2E911CA);

    // Both replicas are up BEFORE the run: replica B's in-memory index
    // cannot know about A's insert, so serving the hit exercises the
    // disk-probe adoption path.
    let a = start(config(Some(dir.clone()))).expect("start replica a");
    let b = start(config(Some(dir.clone()))).expect("start replica b");
    let computed = client::explore(&a.addr().to_string(), &req).expect("explore on a");
    assert_eq!(computed.source, "run");

    let shared = client::explore(&b.addr().to_string(), &req).expect("explore on b");
    assert_eq!(shared.source, "store", "replica b must adopt a's entry");
    assert_eq!(
        serde_json::to_string(&shared.report).unwrap(),
        serde_json::to_string(&computed.report).unwrap()
    );
    assert_eq!(
        metric_u64(
            &metrics(&b.addr().to_string()),
            &["queue", "jobs_completed"]
        ),
        0,
        "replica b must not run the engine"
    );

    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_explorations_coalesce_into_one_run() {
    // One worker, one slowish request, four concurrent clients: the job
    // table must fold them onto a single engine run.
    let cfg = ServerConfig {
        engine_workers: 1,
        ..config(None)
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();
    let req = ExploreRequest {
        seed: 0xC0A1,
        effort: if cfg!(debug_assertions) { 300 } else { 2_000 },
        repeats: 4,
        ..ExploreRequest::default()
    };

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let req = req.clone();
            std::thread::spawn(move || client::explore(&addr, &req).expect("coalesced explore"))
        })
        .collect();
    let responses: Vec<_> = clients.into_iter().map(|t| t.join().unwrap()).collect();

    let reference = serde_json::to_string(&responses[0].report).unwrap();
    for r in &responses[1..] {
        assert_eq!(
            serde_json::to_string(&r.report).unwrap(),
            reference,
            "every waiter sees the same answer"
        );
    }

    let snap = metrics(&addr);
    assert_eq!(
        metric_u64(&snap, &["queue", "jobs_completed"]),
        1,
        "exactly one engine run for four identical requests"
    );
    assert!(
        metric_u64(&snap, &["jobs", "coalesced"]) >= 1,
        "late arrivals coalesced onto the in-flight run"
    );
    assert_eq!(metric_u64(&snap, &["requests", "by_status", "200"]), 4);
    handle.shutdown();
}

#[test]
fn damaged_and_cancelled_runs_never_persist() {
    // Plan: block 0 repeat 0 panics — the run *survives* (repeat 1 covers
    // it) and is served with `jobs_failed == 1`, which is exactly the
    // dangerous case: a 200 answer that must still never be persisted.
    let dir = tmp_dir("damaged");
    let cfg = ServerConfig {
        fault_plan: Some(FaultPlan::parse("panic@0.0").expect("valid plan")),
        ..config(Some(dir.clone()))
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();
    let response = client::explore(&addr, &quick(0xDA3A6E)).expect("damaged run is served");
    assert_eq!(response.metrics.jobs_failed, 1, "the planned casualty");
    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["store", "inserts"]), 0);
    handle.shutdown();

    // A cancelled (now: degraded, best-so-far partial) run is *served* as
    // a 200 with `degraded: true` — but it must not persist either.
    let cfg = ServerConfig {
        fault_plan: Some(FaultPlan::parse("cancel@0.0").expect("valid plan")),
        ..config(Some(dir.clone()))
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();
    let partial = client::explore(&addr, &quick(0xCA4CE1)).expect("partial is served");
    assert!(partial.degraded, "cancel fault yields a degraded partial");
    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["store", "inserts"]), 0);
    handle.shutdown();

    let store = isex_store::Store::open(&dir, 0).expect("open store offline");
    assert!(
        store.entries().is_empty(),
        "no damaged or degraded run may leave a store entry: {:?}",
        store.entries()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_job_lifecycle_submit_wait_done() {
    let dir = tmp_dir("jobs");
    let handle = start(config(Some(dir.clone()))).expect("start server");
    let addr = handle.addr().to_string();
    let req = quick(0xA57);

    let submitted = client::submit_job(&addr, &req).expect("submit");
    assert!(!submitted.coalesced);
    assert!(matches!(submitted.status.as_str(), "queued" | "running"));

    let done = client::wait_job(&addr, &submitted.job_id, 120_000).expect("wait");
    assert_eq!(done.status, "done", "error: {:?}", done.error);
    assert_eq!(done.key, submitted.key);
    let report = done.report.expect("done embeds the report");

    // Non-blocking status poll still answers after completion.
    let polled = client::job_status(&addr, &submitted.job_id).expect("status");
    assert_eq!(polled.status, "done");

    // The same exploration resubmitted is admitted pre-completed from a
    // cache tier — no second engine run.
    let again = client::submit_job(&addr, &req).expect("resubmit");
    assert_eq!(again.status, "done");
    assert_ne!(again.job_id, submitted.job_id, "a fresh handle every time");
    let cached = client::wait_job(&addr, &again.job_id, 1_000).expect("wait cached");
    assert_eq!(cached.status, "done");
    assert_eq!(cached.source.as_deref(), Some("memory"));

    // And the one-call wrapper agrees with everything above.
    let wrapped = client::explore_async(&addr, &req, 120_000).expect("explore_async");
    assert!(wrapped.cached);
    assert_eq!(
        serde_json::to_string(&wrapped.report).unwrap(),
        serde_json::to_string(&report).unwrap()
    );

    assert_eq!(
        metric_u64(&metrics(&addr), &["queue", "jobs_completed"]),
        1,
        "one engine run behind three submissions"
    );

    // Unknown and malformed job IDs are 404, not 500.
    for path in ["/v1/jobs/j-999999", "/v1/jobs/", "/v1/jobs/a/b"] {
        let raw = client::get(&addr, path).expect("GET");
        assert_eq!(raw.status, 404, "{path}: {}", raw.body);
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn method_not_allowed_carries_allow_header_over_raw_tcp() {
    let handle = start(config(None)).expect("start server");
    let addr = handle.addr().to_string();

    // (request line, expected Allow) — a GET on the explore endpoints and
    // a POST on the read-only ones.
    let cases = [
        ("GET /v1/explore HTTP/1.1", "POST"),
        ("DELETE /v1/jobs HTTP/1.1", "POST"),
        ("POST /healthz HTTP/1.1", "GET"),
        ("PUT /metrics HTTP/1.1", "GET"),
        ("POST /v1/jobs/j-1/wait HTTP/1.1", "GET"),
    ];
    for (request_line, allow) in cases {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(format!("{request_line}\r\nhost: t\r\ncontent-length: 0\r\n\r\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(
            response.starts_with("HTTP/1.1 405"),
            "{request_line}: {response}"
        );
        let allow_line = response
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with("allow:"))
            .unwrap_or_else(|| panic!("{request_line}: no Allow header in {response}"));
        assert_eq!(
            allow_line.split(':').nth(1).map(str::trim),
            Some(allow),
            "{request_line}"
        );
    }
    handle.shutdown();
}
