//! End-to-end overload drill against the **real `isexd` binary** — the
//! CI `overload-smoke` job's teeth. A release-built server with a tiny
//! waiting room is driven into overload over real TCP and must show all
//! three graceful-degradation faces at once:
//!
//! * shed requests answer `503` with a `Retry-After` hint, immediately;
//! * deadline-pressed requests answer `200` with `"degraded": true` and
//!   per-block provenance — a partial answer beats a timeout;
//! * unpressed requests are byte-identical to a direct [`run_flow`]
//!   call, proving the overload machinery is pay-for-use;
//! * and after the dust settles, the on-disk result store holds **zero**
//!   degraded entries — partials never reach any durable tier.
//!
//! The test is `#[ignore]`d: it spawns a subprocess and leans on wall
//! clocks, so it runs in the dedicated CI job
//! (`cargo test -p isex-serve --release --test overload_smoke -- --ignored`)
//! rather than in every `cargo test` sweep.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use isex_serve::client::{self, ClientError};
use isex_serve::protocol::decode_result_payload;
use isex_serve::ExploreRequest;
use isex_store::Store;

/// The spawned `isexd`, killed on drop so a panicking assertion never
/// leaks a listener into the CI runner.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the real binary on an OS-assigned port and scrapes the bound
/// address from its startup banner on stderr.
fn spawn_isexd(args: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_isexd"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn isexd");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read isexd stderr") > 0 {
        if let Some(rest) = line.trim().strip_prefix("isexd listening on http://") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("isexd printed its listen address before exiting");
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Daemon { child, addr }
}

/// A request heavy enough to occupy the single worker for a while.
fn slow(seed: u64) -> ExploreRequest {
    ExploreRequest {
        seed,
        effort: 4_000,
        repeats: 6,
        ..ExploreRequest::default()
    }
}

#[test]
#[ignore = "spawns the isexd binary; run via the CI overload-smoke job"]
fn overloaded_isexd_sheds_degrades_and_keeps_clean_answers_clean() {
    let store_dir =
        std::env::temp_dir().join(format!("isex-overload-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let daemon = spawn_isexd(&[
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--queue-cap",
        "1",
        "--store-dir",
        store_dir.to_str().expect("utf-8 temp path"),
    ]);
    let addr = daemon.addr.clone();

    // -- Phase 1: saturation. One worker, one waiting-room slot, a burst
    // of slow requests with distinct seeds (so coalescing cannot merge
    // them): the overflow must be *refused now* with 503 + Retry-After,
    // not parked until its deadline burns out.
    let outcomes: Vec<_> = (0..6u64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || client::explore(&addr, &slow(1_000 + i)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let shed: Vec<_> = outcomes
        .iter()
        .filter_map(|r| match r {
            Err(ClientError::Http {
                status: 503,
                retry_after_secs,
                ..
            }) => Some(retry_after_secs),
            _ => None,
        })
        .collect();
    assert!(
        !shed.is_empty(),
        "a 1-deep queue under a 6-request burst must shed: {outcomes:?}"
    );
    assert!(
        shed.iter().all(|hint| hint.is_some()),
        "every 503 must carry a Retry-After hint"
    );
    assert!(
        outcomes.iter().any(|r| r.is_ok()),
        "shedding must protect the admitted requests, not replace them: {outcomes:?}"
    );
    for response in outcomes.iter().flatten() {
        assert!(
            !(response.degraded && response.cached),
            "a degraded answer must never come from a cache tier"
        );
    }

    // -- Phase 2: deadline pressure. The queue is idle again, so a tight
    // budget is *admitted* and answered with whatever completed: a 200
    // carrying `degraded: true` and per-block rounds provenance. The
    // engine honours cancellation at `(block, repeat)` boundaries, so the
    // shape matters: many cheap repeats keep each cancellation interval
    // far inside the grace window (a handful of heavy repeats would race
    // the 504 fallback instead), and the total run cost stays well past
    // the budget on any plausible CI hardware.
    let tight = ExploreRequest {
        seed: 77,
        effort: 400,
        repeats: 60,
        timeout_ms: Some(900),
        ..ExploreRequest::default()
    };
    let partial =
        client::explore(&addr, &tight).expect("tight deadline yields a partial, not an error");
    assert!(partial.degraded, "envelope must say degraded");
    assert!(partial.report.degraded, "report must say degraded");
    assert!(
        partial
            .report
            .per_block
            .iter()
            .any(|b| b.degraded && b.rounds_completed.is_some()),
        "degraded blocks must carry rounds_completed: {:?}",
        partial.report.per_block
    );

    // -- Phase 3: no pressure, no residue. A comfortable request must be
    // bitwise the direct `run_flow` answer.
    let full = ExploreRequest {
        seed: 0x5EED,
        effort: 40,
        repeats: 2,
        ..ExploreRequest::default()
    };
    let clean = client::explore(&addr, &full).expect("unpressed run");
    assert!(!clean.degraded);
    let direct = isex_flow::run_flow(&full.flow_config(), &full.program(), full.seed);
    assert_eq!(
        serde_json::to_string(&clean.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "an unpressed clustered answer must match run_flow byte for byte"
    );

    // The server lived through all of it.
    let health = client::get(&addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    // -- Phase 4: the durable tier. Kill the daemon and audit its store
    // offline: the clean run is there, the partial is not, and no entry
    // anywhere decodes as degraded.
    drop(daemon);
    let store = Store::open(&store_dir, 0).expect("reopen store offline");
    let entries = store.entries();
    assert!(
        entries.iter().any(|e| e.key == clean.key),
        "the clean run must be durably stored; got {entries:?}"
    );
    assert!(
        !entries.iter().any(|e| e.key == partial.key),
        "the degraded run must never be durably stored; got {entries:?}"
    );
    for entry in &entries {
        let bytes = store.lookup(&entry.key).expect("entry readable");
        let cached = decode_result_payload(&entry.key, &bytes)
            .unwrap_or_else(|| panic!("store entry {} must decode", entry.key));
        assert!(
            !cached.report.degraded,
            "store entry {} is degraded — partials leaked into the durable tier",
            entry.key
        );
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// A second, cheaper drill: graceful shutdown while saturated must still
/// answer every in-flight client — the running job finishes (200), the
/// queued overflow is rejected (503), nobody hangs. Overload and drain
/// compose.
#[test]
#[ignore = "spawns the isexd binary; run via the CI overload-smoke job"]
fn saturated_shutdown_answers_every_client() {
    let mut daemon = spawn_isexd(&[
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--queue-cap",
        "1",
    ]);
    let addr = daemon.addr.clone();

    let clients: Vec<_> = (0..3u64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || client::explore(&addr, &slow(9_000 + i)))
        })
        .collect();
    // Let the burst land, then ask for a graceful drain.
    std::thread::sleep(Duration::from_millis(300));
    let _ = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status();
    let _ = daemon.child.wait();

    for client_thread in clients {
        // Every thread must *return* — an answered request (200 for the
        // drained run, 503 for the rejected overflow, 504 for a tripped
        // deadline) or at worst a reset socket — rather than hang on a
        // dying server.
        let outcome = client_thread.join().expect("client thread returns");
        match outcome {
            Ok(_) | Err(ClientError::Http { .. }) | Err(ClientError::Io(_)) => {}
            Err(other) => panic!("client saw a protocol-level failure: {other}"),
        }
    }
}
