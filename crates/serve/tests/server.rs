//! End-to-end tests over real TCP: every test binds `127.0.0.1:0`, starts
//! a full server, and talks to it with the blocking client.
//!
//! Coverage follows the service's contract:
//! * a served exploration is bitwise identical to a direct `run_flow`;
//! * repeating a request is a cache hit — counter increments, latency drops;
//! * malformed requests get `400`, unknown paths `404`, wrong methods `405`;
//! * a full queue gets `503` + `Retry-After`;
//! * a request that outlives its deadline gets `504`;
//! * graceful shutdown drains the in-flight run (its waiter gets `200`)
//!   and rejects queued ones (`503`).

use std::time::{Duration, Instant};

use isex_serve::client::{self, ClientError};
use isex_serve::{start, ExploreRequest, ServerConfig};
use serde::Value;

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

fn request(seed: u64, effort: usize, repeats: usize) -> ExploreRequest {
    ExploreRequest {
        seed,
        effort,
        repeats,
        ..ExploreRequest::default()
    }
}

/// Debug builds explore several times slower than release; slow requests
/// use a smaller iteration budget there so the suite's wall-clock stays
/// comparable under plain `cargo test`.
const SLOW_EFFORT: usize = if cfg!(debug_assertions) { 300 } else { 2_000 };
const MEDIUM_EFFORT: usize = if cfg!(debug_assertions) { 150 } else { 600 };

/// A request quick enough to answer in tens of milliseconds.
fn quick(seed: u64) -> ExploreRequest {
    request(seed, 40, 2)
}

/// A request slow enough (seconds) to observe in-flight through `/metrics`.
fn slow(seed: u64) -> ExploreRequest {
    request(seed, SLOW_EFFORT, 4)
}

fn metrics(addr: &str) -> Value {
    let raw = client::get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(raw.status, 200, "{}", raw.body);
    serde_json::parse(&raw.body).expect("metrics JSON")
}

/// Walks an object path like `["queue", "depth"]`.
fn lookup<'a>(value: &'a Value, path: &[&str]) -> &'a Value {
    let mut current = value;
    for key in path {
        current = current
            .as_object()
            .unwrap_or_else(|| panic!("`{key}`: not an object"))
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no `{key}` in metrics"));
    }
    current
}

fn metric_u64(value: &Value, path: &[&str]) -> u64 {
    match lookup(value, path) {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("{path:?}: expected integer, got {}", other.kind()),
    }
}

fn metric_f64(value: &Value, path: &[&str]) -> f64 {
    match lookup(value, path) {
        Value::F64(x) => *x,
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        other => panic!("{path:?}: expected number, got {}", other.kind()),
    }
}

/// Polls `/metrics` until `predicate` holds; panics after `timeout`.
fn wait_for_metric(addr: &str, timeout: Duration, what: &str, predicate: impl Fn(&Value) -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if predicate(&metrics(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn served_exploration_matches_direct_run_bitwise() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    let req = quick(0x5e_ed);
    let response = client::explore(&addr, &req).expect("explore");
    assert!(!response.cached);

    let direct = isex_flow::run_flow(&req.flow_config(), &req.program(), req.seed);
    assert_eq!(
        serde_json::to_string(&response.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "served report must be bitwise identical to a direct run_flow"
    );

    // Provenance travels with the metrics.
    assert_eq!(response.metrics.algorithm, "MI");
    assert_eq!(response.metrics.benchmark, direct_benchmark_name(&req));
    assert!(!response.metrics.version.is_empty());
    assert_eq!(response.metrics.master_seed, req.seed);

    handle.shutdown();
}

fn direct_benchmark_name(req: &ExploreRequest) -> String {
    req.program().name.clone()
}

#[test]
fn repeated_request_is_a_cache_hit_with_lower_latency() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    // Expensive enough that the recompute-vs-lookup gap is unmistakable.
    let req = request(0xCAC4E, MEDIUM_EFFORT, 2);

    let t0 = Instant::now();
    let first = client::explore(&addr, &req).expect("first explore");
    let miss_latency = t0.elapsed();
    assert!(!first.cached);

    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["cache", "misses"]), 1);
    assert_eq!(metric_u64(&snap, &["cache", "hits"]), 0);
    let sum_after_miss = metric_f64(&snap, &["latency", "explore", "sum_ms"]);

    let t1 = Instant::now();
    let second = client::explore(&addr, &req).expect("second explore");
    let hit_latency = t1.elapsed();
    assert!(second.cached, "identical request must be served from cache");
    assert_eq!(second.key, first.key);
    assert_eq!(
        serde_json::to_string(&second.report).unwrap(),
        serde_json::to_string(&first.report).unwrap()
    );

    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["cache", "hits"]), 1);
    assert_eq!(metric_u64(&snap, &["cache", "misses"]), 1);
    assert_eq!(metric_u64(&snap, &["latency", "explore", "count"]), 2);

    // Both clocks agree the hit was strictly cheaper: client wall time and
    // the server's own histogram.
    assert!(
        hit_latency < miss_latency,
        "cache hit ({hit_latency:?}) should beat recompute ({miss_latency:?})"
    );
    let sum_after_hit = metric_f64(&snap, &["latency", "explore", "sum_ms"]);
    assert!(
        sum_after_hit - sum_after_miss < sum_after_miss,
        "server-side hit latency ({:.2}ms) should beat the miss ({sum_after_miss:.2}ms)",
        sum_after_hit - sum_after_miss
    );

    handle.shutdown();
}

#[test]
fn malformed_requests_get_400_and_routing_errors_are_clean() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();
    let timeout = Duration::from_secs(30);

    // Broken JSON.
    let raw = client::roundtrip(&addr, "POST", "/v1/explore", Some("{not json"), timeout).unwrap();
    assert_eq!(raw.status, 400, "{}", raw.body);
    assert!(raw.body.contains("error"), "{}", raw.body);

    // Valid JSON, unknown field.
    let raw = client::roundtrip(
        &addr,
        "POST",
        "/v1/explore",
        Some(r#"{"bench": "crc32", "bananas": 1}"#),
        timeout,
    )
    .unwrap();
    assert_eq!(raw.status, 400, "{}", raw.body);
    assert!(raw.body.contains("bananas"), "{}", raw.body);

    // Valid JSON, unknown benchmark: the registry's error lists valid names.
    let raw = client::roundtrip(
        &addr,
        "POST",
        "/v1/explore",
        Some(r#"{"bench": "quicksort"}"#),
        timeout,
    )
    .unwrap();
    assert_eq!(raw.status, 400, "{}", raw.body);
    assert!(
        raw.body.contains("crc32"),
        "should list valid names: {}",
        raw.body
    );

    // Routing.
    let raw = client::roundtrip(&addr, "GET", "/nope", None, timeout).unwrap();
    assert_eq!(raw.status, 404);
    let raw = client::roundtrip(&addr, "POST", "/healthz", Some("{}"), timeout).unwrap();
    assert_eq!(raw.status, 405);
    let raw = client::get(&addr, "/healthz").unwrap();
    assert_eq!(raw.status, 200);

    let snap = metrics(&addr);
    assert_eq!(metric_u64(&snap, &["requests", "by_status", "400"]), 3);

    handle.shutdown();
}

#[test]
fn full_queue_gets_503_with_retry_after() {
    // One worker, one waiting slot: the third concurrent request must bounce.
    let cfg = ServerConfig {
        engine_workers: 1,
        queue_capacity: 1,
        ..config()
    };
    let retry_after = cfg.retry_after_secs;
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    let addr_a = addr.clone();
    let a = std::thread::spawn(move || client::explore(&addr_a, &slow(1)));
    wait_for_metric(&addr, Duration::from_secs(30), "job A in flight", |m| {
        metric_u64(m, &["queue", "in_flight"]) == 1
    });

    let addr_b = addr.clone();
    let b = std::thread::spawn(move || client::explore(&addr_b, &slow(2)));
    wait_for_metric(&addr, Duration::from_secs(30), "job B queued", |m| {
        metric_u64(m, &["queue", "depth"]) == 1
    });

    // The queue is now full: an immediate 503, not a hang.
    let t0 = Instant::now();
    match client::explore(&addr, &slow(3)) {
        Err(ClientError::Http { status: 503, .. }) => {}
        other => panic!("expected 503, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "backpressure must answer immediately, not after the queue drains"
    );
    let raw = client::roundtrip(
        &addr,
        "POST",
        "/v1/explore",
        Some(&slow(4).to_json()),
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(raw.status, 503);
    assert_eq!(
        raw.header("retry-after"),
        Some(retry_after.to_string().as_str())
    );

    let snap = metrics(&addr);
    assert!(metric_u64(&snap, &["queue", "rejected_queue_full"]) >= 2);

    // Shutdown drains: the in-flight run completes (200), the queued one is
    // rejected (503).
    handle.shutdown();
    let a = a.join().expect("join A");
    assert!(a.is_ok(), "in-flight job should drain to 200: {a:?}");
    match b.join().expect("join B") {
        Err(ClientError::Http { status: 503, .. }) => {}
        other => panic!("queued job should be rejected on shutdown, got {other:?}"),
    }
}

#[test]
fn tight_deadline_yields_degraded_200_within_budget() {
    let cfg = ServerConfig {
        engine_workers: 1,
        ..config()
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    // A run that would take seconds, boxed into a 1-second budget: the
    // watchdog trips the run at the budget minus grace, the engine hands
    // back its best-so-far partial, and the waiter gets a 200 with
    // `"degraded": true` instead of an empty-handed 504.
    let mut req = slow(0xDEAD);
    req.timeout_ms = Some(1_000);
    let t0 = Instant::now();
    let response = client::explore(&addr, &req).expect("partial answer, not an error");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "the deadline must bound the wait"
    );
    assert!(response.degraded, "envelope must carry degraded");
    assert!(response.report.degraded, "report must carry degraded");
    assert!(response.metrics.degraded, "metrics must carry degraded");
    assert!(
        response
            .report
            .per_block
            .iter()
            .any(|b| b.degraded && b.rounds_completed.is_some()),
        "degraded blocks must carry rounds_completed: {:?}",
        response.report.per_block
    );
    wait_for_metric(
        &addr,
        Duration::from_secs(10),
        "degraded run counted",
        |m| {
            metric_u64(m, &["requests", "degraded_runs"]) == 1
                && metric_u64(m, &["requests", "degraded_responses"]) == 1
        },
    );

    // The partial must never have entered a cache tier: the same
    // exploration with a full budget recomputes from scratch and matches a
    // direct run bitwise.
    let full = slow(0xDEAD);
    let again = client::explore(&addr, &full).expect("full-budget run");
    assert!(!again.cached, "degraded result must not have been cached");
    assert!(!again.degraded);
    let direct = isex_flow::run_flow(&full.flow_config(), &full.program(), full.seed);
    assert_eq!(
        serde_json::to_string(&again.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "the full-budget rerun is the canonical answer"
    );

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_job() {
    let cfg = ServerConfig {
        engine_workers: 1,
        ..config()
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    let addr_a = addr.clone();
    let req = slow(0x0FF);
    let expected = isex_flow::run_flow(&req.flow_config(), &req.program(), req.seed);
    let a = std::thread::spawn(move || client::explore(&addr_a, &req));
    wait_for_metric(&addr, Duration::from_secs(30), "job in flight", |m| {
        metric_u64(m, &["queue", "in_flight"]) == 1
    });

    // shutdown() blocks until the worker finishes the run; the waiter must
    // still receive the full, correct answer.
    handle.shutdown();
    let response = a.join().expect("join").expect("drained job answers 200");
    assert_eq!(
        serde_json::to_string(&response.report).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "a drained job still returns the exact deterministic result"
    );

    // The listener is gone: new connections are refused.
    assert!(
        client::get(&addr, "/healthz").is_err(),
        "server should no longer accept connections"
    );
}
