//! Observability over real TCP: trace-ID mint/accept/echo, per-request
//! trace files under `--trace-dir` (bounded by `--trace-keep`), and the
//! Prometheus rendering of `/metrics`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use isex_serve::client;
use isex_serve::trace::TRACE_HEADER;
use isex_serve::{start, ExploreRequest, ServerConfig};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

fn quick(seed: u64) -> ExploreRequest {
    ExploreRequest {
        seed,
        effort: 40,
        repeats: 1,
        ..ExploreRequest::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isex-serve-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One raw HTTP exchange with caller-controlled request headers (the
/// bundled client does not expose custom headers).
fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn every_response_carries_a_minted_trace_id() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    let health = client::get(&addr, "/healthz").unwrap();
    let id = health.header(TRACE_HEADER).expect("trace id on /healthz");
    assert!(!id.is_empty());

    // Even errors echo a trace id.
    let missing = client::get(&addr, "/nowhere").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.header(TRACE_HEADER).is_some());

    handle.shutdown();
}

#[test]
fn client_trace_id_is_accepted_and_hostile_ones_replaced() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    let (status, headers, _) = raw_request(
        &addr,
        "GET",
        "/healthz",
        &[(TRACE_HEADER, "req-42_A")],
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, TRACE_HEADER), Some("req-42_A"));

    // A path-traversal attempt is discarded and a fresh ID minted.
    let (_, headers, _) = raw_request(
        &addr,
        "GET",
        "/healthz",
        &[(TRACE_HEADER, "../../etc/passwd")],
        None,
    );
    let echoed = header(&headers, TRACE_HEADER).expect("minted id");
    assert_ne!(echoed, "../../etc/passwd");
    assert!(!echoed.contains('/'));

    handle.shutdown();
}

#[test]
fn traced_server_writes_bounded_per_request_trace_files() {
    let dir = temp_dir("ring");
    let mut cfg = config();
    cfg.trace_dir = Some(dir.clone());
    cfg.trace_keep = 2; // one traced request = two files
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    let id = "trace-files-1";
    let (status, headers, body) = raw_request(
        &addr,
        "POST",
        "/v1/explore",
        &[(TRACE_HEADER, id), ("content-type", "application/json")],
        Some(&quick(0xAB).to_json()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, TRACE_HEADER), Some(id));

    let trace_path = dir.join(format!("{id}.trace.json"));
    let events_path = dir.join(format!("{id}.events.jsonl"));
    let trace = std::fs::read_to_string(&trace_path).expect("chrome trace written");
    let doc = serde_json::parse(&trace).expect("trace is valid JSON");
    let events_text = std::fs::read_to_string(&events_path).expect("events written");
    assert!(
        matches!(doc, serde::Value::Array(ref a) if !a.is_empty()),
        "trace must be a non-empty event array"
    );
    // Every event line parses and is tagged with the request's trace id.
    let mut lines = 0;
    for line in events_text.lines() {
        let ev: isex_engine::RunEvent = serde_json::from_str(line).expect(line);
        assert_eq!(ev.trace_id(), Some(id), "{line}");
        lines += 1;
    }
    assert!(lines > 0, "the traced run must emit events");

    // Two more traced runs (distinct seeds — cache hits skip the engine
    // and write nothing) overflow the two-file ring: the oldest pair dies.
    for seed in [0xAC, 0xADu64] {
        let (status, _, body) = raw_request(
            &addr,
            "POST",
            "/v1/explore",
            &[("content-type", "application/json")],
            Some(&quick(seed).to_json()),
        );
        assert_eq!(status, 200, "{body}");
    }
    let remaining: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        remaining.len(),
        2,
        "ring must bound the directory: {remaining:?}"
    );
    assert!(!trace_path.exists(), "oldest trace evicted");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_render_as_prometheus_text() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();
    // Generate some traffic so counters are non-trivial.
    let _ = client::explore(&addr, &quick(0x9)).expect("explore");

    let (status, headers, body) =
        raw_request(&addr, "GET", "/metrics?format=prometheus", &[], None);
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "{headers:?}"
    );
    assert!(header(&headers, TRACE_HEADER).is_some());
    assert_eq!(
        header(&headers, "cache-control"),
        Some("no-store"),
        "a scrape must never be served from an intermediary cache"
    );
    let mut lines = 0;
    for line in body.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "{line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect(line);
        assert!(!name.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "{line}");
        lines += 1;
    }
    assert!(lines > 20, "expected a full metric family set, got {lines}");
    for needle in [
        "isexd_uptime_ms ",
        "isexd_engine_runs 1",
        "isexd_latency_explore_ms_count 1",
        "isexd_requests_total{status=\"200\"} 1",
        "# HELP isexd_uptime_ms ",
        "# TYPE isexd_uptime_ms gauge",
        "# TYPE isexd_requests_total counter",
        "# TYPE isexd_latency_explore_ms histogram",
        "isexd_jobs_inflight ",
        "isexd_jobs_coalesced_waiters ",
    ] {
        assert!(body.contains(needle), "missing `{needle}`:\n{body}");
    }

    // The JSON document is still the default.
    let json = client::get(&addr, "/metrics").unwrap();
    assert!(json.body.starts_with('{'), "{}", json.body);

    handle.shutdown();
}

#[test]
fn readyz_and_metrics_responses_are_uncacheable() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();
    for path in ["/readyz", "/metrics", "/metrics?format=prometheus"] {
        let (status, headers, _) = raw_request(&addr, "GET", path, &[], None);
        assert_eq!(status, 200, "{path}");
        assert_eq!(
            header(&headers, "cache-control"),
            Some("no-store"),
            "`{path}` must forbid intermediary caching"
        );
    }
    handle.shutdown();
}

/// The seq stamped inside a serialized `RunEvent` object
/// (`{"JobStart": {..., "seq": N}}`).
fn event_seq(event: &serde::Value) -> u64 {
    let serde::Value::Object(variants) = event else {
        panic!("event is not an object: {event:?}");
    };
    variants[0].1.get("seq").and_then(|v| v.as_u64()).unwrap()
}

/// The trace id stamped inside a serialized `RunEvent` object.
fn event_trace(event: &serde::Value) -> Option<String> {
    let serde::Value::Object(variants) = event else {
        return None;
    };
    match variants[0].1.get("trace") {
        Some(serde::Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn events_page(addr: &str, job_id: &str, from_seq: u64) -> serde::Value {
    let (status, _, body) = raw_request(
        addr,
        "GET",
        &format!("/v1/jobs/{job_id}/events?from_seq={from_seq}"),
        &[],
        None,
    );
    assert_eq!(status, 200, "{body}");
    serde_json::parse(&body).expect("events page is JSON")
}

#[test]
fn job_events_stream_replays_gapless_and_closes_on_completion() {
    // No --trace-dir: the live event ring works on an untraced server.
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    let (status, headers, body) = raw_request(
        &addr,
        "POST",
        "/v1/jobs",
        &[
            (TRACE_HEADER, "t-events"),
            ("content-type", "application/json"),
        ],
        Some(&quick(0xE1).to_json()),
    );
    assert_eq!(status, 202, "{body}");
    assert_eq!(header(&headers, TRACE_HEADER), Some("t-events"));
    let submitted = serde_json::parse(&body).expect("202 body");
    let Some(serde::Value::String(job_id)) = submitted.get("job_id").cloned() else {
        panic!("202 body without job_id: {body}");
    };

    let done = client::wait_job(&addr, &job_id, 120_000).expect("wait");
    assert_eq!(done.status, "done", "error: {:?}", done.error);

    // Replay from the beginning: a contiguous seq range starting at 0,
    // every event tagged with the submitter's trace id, stream closed.
    let page = events_page(&addr, &job_id, 0);
    assert_eq!(page.get("closed"), Some(&serde::Value::Bool(true)));
    assert_eq!(page.get("dropped").and_then(|v| v.as_u64()), Some(0));
    let Some(serde::Value::Array(events)) = page.get("events") else {
        panic!("page without events: {page:?}");
    };
    assert!(
        !events.is_empty(),
        "a completed run must have emitted events"
    );
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event_seq(event), i as u64, "gapless from seq 0");
        assert_eq!(event_trace(event).as_deref(), Some("t-events"));
    }
    let next_seq = page.get("next_seq").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(next_seq, events.len() as u64);

    // An incremental continuation from next_seq is empty, still closed,
    // still gapless — the paging contract for a finished run.
    let tail = events_page(&addr, &job_id, next_seq);
    assert_eq!(tail.get("closed"), Some(&serde::Value::Bool(true)));
    assert_eq!(tail.get("dropped").and_then(|v| v.as_u64()), Some(0));
    assert!(
        matches!(tail.get("events"), Some(serde::Value::Array(a)) if a.is_empty()),
        "{tail:?}"
    );

    handle.shutdown();
}

#[test]
fn trace_id_propagates_through_the_async_job_tier() {
    // One worker, a slow exploration: the async submitter's trace id is
    // the *run's* id; a coalescing synchronous waiter and the
    // store-persisted result observe that one run, not a second one.
    let dir = temp_dir("prop");
    let traces = dir.join("traces");
    let cfg = ServerConfig {
        engine_workers: 1,
        store_dir: Some(dir.clone()),
        trace_dir: Some(traces.clone()),
        ..config()
    };
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();
    let req = ExploreRequest {
        seed: 0xC0DA,
        effort: if cfg!(debug_assertions) { 300 } else { 2_000 },
        repeats: 4,
        ..ExploreRequest::default()
    };

    let (status, headers, body) = raw_request(
        &addr,
        "POST",
        "/v1/jobs",
        &[
            (TRACE_HEADER, "t-prop"),
            ("content-type", "application/json"),
        ],
        Some(&req.to_json()),
    );
    assert_eq!(status, 202, "{body}");
    assert_eq!(header(&headers, TRACE_HEADER), Some("t-prop"));
    let submitted = serde_json::parse(&body).expect("202 body");
    let Some(serde::Value::String(job_id)) = submitted.get("job_id").cloned() else {
        panic!("202 body without job_id: {body}");
    };

    // A synchronous waiter with its own trace id coalesces onto the run.
    let waiter = {
        let addr = addr.clone();
        let payload = req.to_json();
        std::thread::spawn(move || {
            raw_request(
                &addr,
                "POST",
                "/v1/explore",
                &[
                    (TRACE_HEADER, "t-other"),
                    ("content-type", "application/json"),
                ],
                Some(&payload),
            )
        })
    };

    let done = client::wait_job(&addr, &job_id, 240_000).expect("wait");
    assert_eq!(done.status, "done", "error: {:?}", done.error);
    let (wstatus, wheaders, wbody) = waiter.join().unwrap();
    assert_eq!(wstatus, 200, "{wbody}");
    // Each response echoes its caller's own id...
    assert_eq!(header(&wheaders, TRACE_HEADER), Some("t-other"));

    // ...but there was exactly ONE engine run, traced under the
    // submitter's id: the live stream and the trace files both say
    // `t-prop`, and no `t-other` run ever existed.
    let page = events_page(&addr, &job_id, 0);
    let Some(serde::Value::Array(events)) = page.get("events") else {
        panic!("page without events: {page:?}");
    };
    assert!(!events.is_empty());
    for event in events {
        assert_eq!(event_trace(event).as_deref(), Some("t-prop"));
    }
    let events_file =
        std::fs::read_to_string(traces.join("t-prop.events.jsonl")).expect("traced run file");
    assert!(events_file.lines().count() > 0);
    assert!(
        !traces.join("t-other.events.jsonl").exists(),
        "the coalesced waiter must not have started a second traced run"
    );

    let metrics = serde_json::parse(&client::get(&addr, "/metrics").unwrap().body).unwrap();
    let metric = |path: &[&str]| {
        let mut v = &metrics;
        for p in path {
            v = v.get(p).unwrap_or(&serde::Value::Null);
        }
        v.as_u64().unwrap_or(0)
    };
    assert_eq!(metric(&["queue", "jobs_completed"]), 1, "one engine run");
    assert!(metric(&["jobs", "coalesced"]) >= 1, "the waiter coalesced");
    assert_eq!(metric(&["store", "inserts"]), 1, "the run persisted once");

    // The store-persisted result answers a later request without a new
    // run — served under the *new* caller's echo, with no new trace file.
    let (lstatus, lheaders, lbody) = raw_request(
        &addr,
        "POST",
        "/v1/explore",
        &[
            (TRACE_HEADER, "t-late"),
            ("content-type", "application/json"),
        ],
        Some(&req.to_json()),
    );
    assert_eq!(lstatus, 200, "{lbody}");
    assert_eq!(header(&lheaders, TRACE_HEADER), Some("t-late"));
    assert!(lbody.contains("\"source\":\"memory\"") || lbody.contains("\"source\":\"store\""));
    assert!(!traces.join("t-late.events.jsonl").exists());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
