//! Observability over real TCP: trace-ID mint/accept/echo, per-request
//! trace files under `--trace-dir` (bounded by `--trace-keep`), and the
//! Prometheus rendering of `/metrics`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use isex_serve::client;
use isex_serve::trace::TRACE_HEADER;
use isex_serve::{start, ExploreRequest, ServerConfig};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

fn quick(seed: u64) -> ExploreRequest {
    ExploreRequest {
        seed,
        effort: 40,
        repeats: 1,
        ..ExploreRequest::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isex-serve-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One raw HTTP exchange with caller-controlled request headers (the
/// bundled client does not expose custom headers).
fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn every_response_carries_a_minted_trace_id() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    let health = client::get(&addr, "/healthz").unwrap();
    let id = health.header(TRACE_HEADER).expect("trace id on /healthz");
    assert!(!id.is_empty());

    // Even errors echo a trace id.
    let missing = client::get(&addr, "/nowhere").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.header(TRACE_HEADER).is_some());

    handle.shutdown();
}

#[test]
fn client_trace_id_is_accepted_and_hostile_ones_replaced() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();

    let (status, headers, _) = raw_request(
        &addr,
        "GET",
        "/healthz",
        &[(TRACE_HEADER, "req-42_A")],
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, TRACE_HEADER), Some("req-42_A"));

    // A path-traversal attempt is discarded and a fresh ID minted.
    let (_, headers, _) = raw_request(
        &addr,
        "GET",
        "/healthz",
        &[(TRACE_HEADER, "../../etc/passwd")],
        None,
    );
    let echoed = header(&headers, TRACE_HEADER).expect("minted id");
    assert_ne!(echoed, "../../etc/passwd");
    assert!(!echoed.contains('/'));

    handle.shutdown();
}

#[test]
fn traced_server_writes_bounded_per_request_trace_files() {
    let dir = temp_dir("ring");
    let mut cfg = config();
    cfg.trace_dir = Some(dir.clone());
    cfg.trace_keep = 2; // one traced request = two files
    let handle = start(cfg).expect("start server");
    let addr = handle.addr().to_string();

    let id = "trace-files-1";
    let (status, headers, body) = raw_request(
        &addr,
        "POST",
        "/v1/explore",
        &[(TRACE_HEADER, id), ("content-type", "application/json")],
        Some(&quick(0xAB).to_json()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, TRACE_HEADER), Some(id));

    let trace_path = dir.join(format!("{id}.trace.json"));
    let events_path = dir.join(format!("{id}.events.jsonl"));
    let trace = std::fs::read_to_string(&trace_path).expect("chrome trace written");
    let doc = serde_json::parse(&trace).expect("trace is valid JSON");
    let events_text = std::fs::read_to_string(&events_path).expect("events written");
    assert!(
        matches!(doc, serde::Value::Array(ref a) if !a.is_empty()),
        "trace must be a non-empty event array"
    );
    // Every event line parses and is tagged with the request's trace id.
    let mut lines = 0;
    for line in events_text.lines() {
        let ev: isex_engine::RunEvent = serde_json::from_str(line).expect(line);
        assert_eq!(ev.trace_id(), Some(id), "{line}");
        lines += 1;
    }
    assert!(lines > 0, "the traced run must emit events");

    // Two more traced runs (distinct seeds — cache hits skip the engine
    // and write nothing) overflow the two-file ring: the oldest pair dies.
    for seed in [0xAC, 0xADu64] {
        let (status, _, body) = raw_request(
            &addr,
            "POST",
            "/v1/explore",
            &[("content-type", "application/json")],
            Some(&quick(seed).to_json()),
        );
        assert_eq!(status, 200, "{body}");
    }
    let remaining: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        remaining.len(),
        2,
        "ring must bound the directory: {remaining:?}"
    );
    assert!(!trace_path.exists(), "oldest trace evicted");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_render_as_prometheus_text() {
    let handle = start(config()).expect("start server");
    let addr = handle.addr().to_string();
    // Generate some traffic so counters are non-trivial.
    let _ = client::explore(&addr, &quick(0x9)).expect("explore");

    let (status, headers, body) =
        raw_request(&addr, "GET", "/metrics?format=prometheus", &[], None);
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "{headers:?}"
    );
    assert!(header(&headers, TRACE_HEADER).is_some());
    let mut lines = 0;
    for line in body.lines() {
        let (name, value) = line.rsplit_once(' ').expect(line);
        assert!(!name.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "{line}");
        lines += 1;
    }
    assert!(lines > 20, "expected a full metric family set, got {lines}");
    for needle in [
        "isexd_uptime_ms ",
        "isexd_engine_runs 1",
        "isexd_latency_explore_ms_count 1",
        "isexd_requests_total{status=\"200\"} 1",
    ] {
        assert!(body.contains(needle), "missing `{needle}`:\n{body}");
    }

    // The JSON document is still the default.
    let json = client::get(&addr, "/metrics").unwrap();
    assert!(json.body.starts_with('{'), "{}", json.body);

    handle.shutdown();
}
