//! Property tests on the probability machinery of Eqs. 1–4.

use isex_aco::{roulette, AcoParams, ImplChoice, PheromoneStore};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_shape() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((1usize..3, 0usize..3), 1..10)
}

#[derive(Clone, Debug)]
struct Mutation {
    node_frac: f64,
    hw: bool,
    idx_frac: f64,
    trail_delta: f64,
    merit: f64,
}

fn arb_mutations() -> impl Strategy<Value = Vec<Mutation>> {
    prop::collection::vec(
        (
            0.0f64..1.0,
            any::<bool>(),
            0.0f64..1.0,
            -50.0f64..50.0,
            -10.0f64..1e6,
        )
            .prop_map(|(node_frac, hw, idx_frac, trail_delta, merit)| Mutation {
                node_frac,
                hw,
                idx_frac,
                trail_delta,
                merit,
            }),
        0..60,
    )
}

fn mutate(store: &mut PheromoneStore, shape: &[(usize, usize)], m: &Mutation) {
    let node = ((m.node_frac * shape.len() as f64) as usize).min(shape.len() - 1);
    let (sw, hw) = shape[node];
    let choice = if m.hw && hw > 0 {
        ImplChoice::Hw(((m.idx_frac * hw as f64) as usize).min(hw - 1))
    } else {
        ImplChoice::Sw(((m.idx_frac * sw as f64) as usize).min(sw - 1))
    };
    store.add_trail(node, choice, m.trail_delta);
    store.set_merit(node, choice, m.merit);
}

proptest! {
    #[test]
    fn selected_probabilities_form_a_distribution(
        shape in arb_shape(),
        muts in arb_mutations(),
    ) {
        let params = AcoParams::default();
        let mut store = PheromoneStore::new(&shape, &params);
        for m in &muts {
            mutate(&mut store, &shape, m);
        }
        for n in 0..shape.len() {
            let probs: Vec<f64> = store
                .choices(n)
                .into_iter()
                .map(|c| store.selected_probability(n, c))
                .collect();
            let sum: f64 = probs.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "node {n}: sum {sum}");
            for p in &probs {
                prop_assert!((0.0..=1.0 + 1e-12).contains(p));
            }
            let (best, bp) = store.best_option(n);
            for c in store.choices(n) {
                prop_assert!(store.selected_probability(n, c) <= bp + 1e-12);
            }
            let _ = best;
        }
    }

    #[test]
    fn trails_never_go_negative(shape in arb_shape(), muts in arb_mutations()) {
        let params = AcoParams::default();
        let mut store = PheromoneStore::new(&shape, &params);
        for m in &muts {
            mutate(&mut store, &shape, m);
        }
        for n in 0..shape.len() {
            for c in store.choices(n) {
                prop_assert!(store.trail(n, c) >= 0.0);
                prop_assert!(store.merit(n, c) > 0.0, "merit floor holds");
            }
        }
    }

    #[test]
    fn normalisation_preserves_ordering(shape in arb_shape(), muts in arb_mutations()) {
        let params = AcoParams::default();
        let mut store = PheromoneStore::new(&shape, &params);
        for m in &muts {
            mutate(&mut store, &shape, m);
        }
        // Record merit order per node, normalise, re-check order (up to the
        // 1% floor clamping genuinely tiny values together).
        let order_before: Vec<Vec<(ImplChoice, f64)>> = (0..shape.len())
            .map(|n| store.choices(n).into_iter().map(|c| (c, store.merit(n, c))).collect())
            .collect();
        store.normalize_merits();
        for (n, before) in order_before.iter().enumerate() {
            for (c1, m1) in before {
                for (c2, m2) in before {
                    if m1 > m2 {
                        let a = store.merit(n, *c1);
                        let b = store.merit(n, *c2);
                        prop_assert!(a >= b - 1e-12, "order inverted after normalise");
                    }
                }
            }
        }
    }

    #[test]
    fn roulette_picks_follow_weights(weights in prop::collection::vec(0.0f64..10.0, 1..6), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let total: f64 = weights.iter().sum();
        let mut counts = vec![0usize; weights.len()];
        let n = 2000;
        for _ in 0..n {
            counts[roulette(&mut rng, &weights)] += 1;
        }
        if total > 0.0 {
            for (i, w) in weights.iter().enumerate() {
                let expected = w / total;
                let observed = counts[i] as f64 / n as f64;
                prop_assert!(
                    (observed - expected).abs() < 0.08,
                    "option {i}: expected {expected:.3}, observed {observed:.3}"
                );
            }
        }
    }
}
