//! Per-(operation, option) trail and merit storage with the probability
//! formulas of Eqs. 1–4.

use serde::{Deserialize, Serialize};

use crate::params::AcoParams;

/// One implementation option of one operation: the `j`-th software or
/// hardware entry of its IO table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ImplChoice {
    /// Software option `j` (execute on the core).
    Sw(usize),
    /// Hardware option `j` (execute inside the ASFU).
    Hw(usize),
}

impl ImplChoice {
    /// Returns `true` for a hardware option.
    pub fn is_hardware(self) -> bool {
        matches!(self, ImplChoice::Hw(_))
    }
}

impl std::fmt::Display for ImplChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImplChoice::Sw(j) => write!(f, "SW-{}", j + 1),
            ImplChoice::Hw(j) => write!(f, "HW-{}", j + 1),
        }
    }
}

#[derive(Clone, Debug)]
struct NodeOptions {
    sw_trail: Vec<f64>,
    hw_trail: Vec<f64>,
    sw_merit: Vec<f64>,
    hw_merit: Vec<f64>,
}

impl NodeOptions {
    fn trail(&self, c: ImplChoice) -> f64 {
        match c {
            ImplChoice::Sw(j) => self.sw_trail[j],
            ImplChoice::Hw(j) => self.hw_trail[j],
        }
    }

    fn merit(&self, c: ImplChoice) -> f64 {
        match c {
            ImplChoice::Sw(j) => self.sw_merit[j],
            ImplChoice::Hw(j) => self.hw_merit[j],
        }
    }

    fn choices(&self) -> impl Iterator<Item = ImplChoice> + '_ {
        (0..self.sw_trail.len())
            .map(ImplChoice::Sw)
            .chain((0..self.hw_trail.len()).map(ImplChoice::Hw))
    }
}

/// Trail (pheromone) and merit values for every implementation option of
/// every operation of one DFG.
///
/// The *trail* is "the number of valid chosen times of an implementation
/// option in previous iterations"; the *merit* is "the benefit of one
/// implementation option being selected" (§4.3). Both feed the
/// chosen-probability (Eq. 1) and the selected-probability (Eq. 3).
///
/// # Example
///
/// ```
/// use isex_aco::{AcoParams, ImplChoice, PheromoneStore};
///
/// // one op with 1 software and 1 hardware option
/// let mut s = PheromoneStore::new(&[(1, 1)], &AcoParams::default());
/// let before = s.selected_probability(0, ImplChoice::Hw(0));
/// s.set_merit(0, ImplChoice::Hw(0), 1000.0);
/// assert!(s.selected_probability(0, ImplChoice::Hw(0)) > before);
/// ```
#[derive(Clone, Debug)]
pub struct PheromoneStore {
    nodes: Vec<NodeOptions>,
    alpha: f64,
}

impl PheromoneStore {
    /// Creates a store for `shape[i] = (sw_options, hw_options)` of each
    /// operation `i`, initialised per `params`.
    pub fn new(shape: &[(usize, usize)], params: &AcoParams) -> Self {
        let nodes = shape
            .iter()
            .map(|&(sw, hw)| {
                assert!(sw > 0, "every operation needs a software option");
                NodeOptions {
                    sw_trail: vec![params.init_trail; sw],
                    hw_trail: vec![params.init_trail; hw],
                    sw_merit: vec![params.init_merit_sw; sw],
                    hw_merit: vec![params.init_merit_hw; hw],
                }
            })
            .collect();
        PheromoneStore {
            nodes,
            alpha: params.alpha,
        }
    }

    /// Number of operations tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no operations are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All options of operation `node`.
    pub fn choices(&self, node: usize) -> Vec<ImplChoice> {
        self.nodes[node].choices().collect()
    }

    /// All options of operation `node`, without allocating. The ant's
    /// ready-matrix step enumerates options for every ready operation every
    /// cycle; the iterator yields the same order as
    /// [`PheromoneStore::choices`] (software options first).
    pub fn choice_iter(&self, node: usize) -> impl Iterator<Item = ImplChoice> + '_ {
        self.nodes[node].choices()
    }

    /// Current trail of an option.
    pub fn trail(&self, node: usize, c: ImplChoice) -> f64 {
        self.nodes[node].trail(c)
    }

    /// Current merit of an option.
    pub fn merit(&self, node: usize, c: ImplChoice) -> f64 {
        self.nodes[node].merit(c)
    }

    /// Adds `delta` (may be negative) to an option's trail, clamping at
    /// zero so probabilities stay well-formed.
    pub fn add_trail(&mut self, node: usize, c: ImplChoice, delta: f64) {
        let n = &mut self.nodes[node];
        let v = match c {
            ImplChoice::Sw(j) => &mut n.sw_trail[j],
            ImplChoice::Hw(j) => &mut n.hw_trail[j],
        };
        *v = (*v + delta).max(0.0);
    }

    /// Overwrites an option's merit (clamped to a tiny positive floor so
    /// roulette weights never vanish entirely).
    pub fn set_merit(&mut self, node: usize, c: ImplChoice, merit: f64) {
        let n = &mut self.nodes[node];
        let v = match c {
            ImplChoice::Sw(j) => &mut n.sw_merit[j],
            ImplChoice::Hw(j) => &mut n.hw_merit[j],
        };
        *v = if merit.is_finite() {
            merit.max(f64::MIN_POSITIVE)
        } else {
            f64::MIN_POSITIVE
        };
    }

    /// Multiplies an option's merit by `factor` (Fig. 4.3.7 penalties work
    /// multiplicatively).
    pub fn scale_merit(&mut self, node: usize, c: ImplChoice, factor: f64) {
        let m = self.merit(node, c);
        self.set_merit(node, c, m * factor);
    }

    /// The un-normalised attraction of an option:
    /// `α·trail + (1−α)·merit` — the shared numerator core of Eqs. 1 and 3.
    pub fn attraction(&self, node: usize, c: ImplChoice) -> f64 {
        let n = &self.nodes[node];
        self.alpha * n.trail(c) + (1.0 - self.alpha) * n.merit(c)
    }

    /// Eq. 3: the selected-probability of option `c` *within its own
    /// operation* (denominator sums over that operation's options only).
    pub fn selected_probability(&self, node: usize, c: ImplChoice) -> f64 {
        let n = &self.nodes[node];
        let total: f64 = n.choices().map(|x| self.attraction(node, x)).sum();
        if total <= 0.0 {
            return 1.0 / n.choices().count() as f64;
        }
        self.attraction(node, c) / total
    }

    /// The option of `node` with the highest selected-probability, and that
    /// probability. Ties resolve to the earliest option (software first).
    pub fn best_option(&self, node: usize) -> (ImplChoice, f64) {
        let n = &self.nodes[node];
        let mut best = None::<(ImplChoice, f64)>;
        for c in n.choices() {
            let p = self.selected_probability(node, c);
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((c, p)),
            }
        }
        best.expect("every operation has at least one option")
    }

    /// Returns `true` once every operation has an option whose
    /// selected-probability reaches `p_end` (the paper's end condition).
    pub fn converged(&self, p_end: f64) -> bool {
        (0..self.nodes.len()).all(|n| self.best_option(n).1 >= p_end)
    }

    /// Normalises the merit values of every operation so they sum to 1
    /// (§4.3: "the merit values of operation must be normalized after
    /// performing merit computation", keeping the cross-operation pick in
    /// the Ready-Matrix fair).
    ///
    /// Each option's share is floored at 1% (MAX–MIN-ant-system style lower
    /// bound) so repeated penalties can never starve an option out of the
    /// search entirely.
    pub fn normalize_merits(&mut self) {
        const FLOOR: f64 = 0.01;
        for n in &mut self.nodes {
            let total: f64 = n.sw_merit.iter().chain(n.hw_merit.iter()).sum();
            if total > 0.0 && total.is_finite() {
                for v in n.sw_merit.iter_mut().chain(n.hw_merit.iter_mut()) {
                    *v = (*v / total).max(FLOOR);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PheromoneStore {
        PheromoneStore::new(&[(2, 2), (1, 0)], &AcoParams::default())
    }

    #[test]
    fn initial_values_follow_params() {
        let s = store();
        assert_eq!(s.trail(0, ImplChoice::Sw(0)), 0.0);
        assert_eq!(s.merit(0, ImplChoice::Sw(1)), 100.0);
        assert_eq!(s.merit(0, ImplChoice::Hw(0)), 200.0);
        assert_eq!(s.choices(0).len(), 4);
        assert_eq!(s.choices(1).len(), 1);
        assert_eq!(s.choice_iter(0).collect::<Vec<_>>(), s.choices(0));
        assert_eq!(s.choice_iter(1).collect::<Vec<_>>(), s.choices(1));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut s = store();
        s.add_trail(0, ImplChoice::Hw(1), 10.0);
        s.set_merit(0, ImplChoice::Sw(0), 50.0);
        let sum: f64 = s
            .choices(0)
            .into_iter()
            .map(|c| s.selected_probability(0, c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trail_clamped_at_zero() {
        let mut s = store();
        s.add_trail(0, ImplChoice::Sw(0), -100.0);
        assert_eq!(s.trail(0, ImplChoice::Sw(0)), 0.0);
    }

    #[test]
    fn single_option_operation_is_always_converged() {
        let s = store();
        assert_eq!(s.best_option(1).1, 1.0);
    }

    #[test]
    fn convergence_requires_domination() {
        let mut s = PheromoneStore::new(&[(1, 1)], &AcoParams::default());
        assert!(!s.converged(0.99));
        // Pump one option hard.
        for _ in 0..200 {
            s.add_trail(0, ImplChoice::Hw(0), 50.0);
        }
        s.set_merit(0, ImplChoice::Sw(0), 1e-6);
        s.set_merit(0, ImplChoice::Hw(0), 1e6);
        assert!(s.converged(0.99));
    }

    #[test]
    fn normalize_keeps_ratios() {
        let mut s = store();
        s.set_merit(0, ImplChoice::Sw(0), 300.0);
        s.set_merit(0, ImplChoice::Sw(1), 100.0);
        s.set_merit(0, ImplChoice::Hw(0), 400.0);
        s.set_merit(0, ImplChoice::Hw(1), 200.0);
        s.normalize_merits();
        let total: f64 = s.choices(0).into_iter().map(|c| s.merit(0, c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((s.merit(0, ImplChoice::Hw(0)) / s.merit(0, ImplChoice::Sw(1)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merit_floor_prevents_dead_options() {
        let mut s = store();
        s.set_merit(0, ImplChoice::Sw(0), -5.0);
        assert!(s.merit(0, ImplChoice::Sw(0)) > 0.0);
        s.set_merit(0, ImplChoice::Sw(0), f64::NAN);
        assert!(s.merit(0, ImplChoice::Sw(0)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "software option")]
    fn zero_software_options_rejected() {
        PheromoneStore::new(&[(0, 2)], &AcoParams::default());
    }
}
