//! The ACO parameter set of §5.1.

use serde::{Deserialize, Serialize};

/// Every tunable of the exploration algorithm, with the experimental
/// defaults of §5.1:
///
/// * `alpha = 0.25` — relative influence of trail vs merit (Eqs. 1/3);
/// * `lambda` — relative influence of the scheduling priority in the
///   chosen-probability (Eq. 1). The thesis lists λ among its parameters
///   without printing a value; `0.5` is used here and exposed for the
///   ablation bench;
/// * `rho1..rho5 = 4, 2, 2, 2, 0.4` — trail reinforcement/evaporation
///   deltas of Fig. 4.3.5;
/// * `beta_cp = 0.9`, `beta_size = 0.7`, `beta_io = 0.8`,
///   `beta_convex = 0.4` — the merit-function penalties of Fig. 4.3.7;
/// * `p_end = 0.99` — the convergence threshold `P_END`;
/// * initial merit `100` (software) / `200` (hardware), initial trail `0`.
///
/// # Example
///
/// ```
/// use isex_aco::AcoParams;
///
/// let p = AcoParams { alpha: 0.5, ..AcoParams::default() };
/// assert_eq!(p.rho1, 4.0);
/// p.validate().expect("paper defaults are valid");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AcoParams {
    /// Relative influence of trail (vs merit): `α`.
    pub alpha: f64,
    /// Relative influence of the scheduling priority: `λ`.
    pub lambda: f64,
    /// Trail gain when the iteration improved and the option was chosen.
    pub rho1: f64,
    /// Trail loss when the iteration improved and the option was not chosen.
    pub rho2: f64,
    /// Trail loss when the iteration regressed and the option was chosen.
    pub rho3: f64,
    /// Trail gain when the iteration regressed and the option was not chosen.
    pub rho4: f64,
    /// Extra trail loss for operations scheduled earlier than before in a
    /// regressed iteration.
    pub rho5: f64,
    /// Merit boost divisor for critical-path operations: `β_CP`.
    pub beta_cp: f64,
    /// Merit penalty for size-1 virtual subgraphs: `β_Size`.
    pub beta_size: f64,
    /// Merit penalty for I/O-port-violating subgraphs: `β_IO`.
    pub beta_io: f64,
    /// Merit penalty for convexity-violating subgraphs: `β_Convex`.
    pub beta_convex: f64,
    /// Convergence threshold on the selected-probability: `P_END`.
    pub p_end: f64,
    /// Initial merit of every software implementation option.
    pub init_merit_sw: f64,
    /// Initial merit of every hardware implementation option.
    pub init_merit_hw: f64,
    /// Initial trail of every implementation option.
    pub init_trail: f64,
    /// Safety valve: maximum iterations per exploration round before the
    /// round is declared converged by fiat (the thesis notes convergence
    /// time is unbounded in theory, §4.4).
    pub max_iterations: usize,
    /// Deterministic round budget per block: when non-zero, exploration
    /// stops after this many rounds even if further ISEs would commit, and
    /// the result is marked degraded. `0` (the default) means unbudgeted —
    /// only the explorer's hard safety cap applies. This is the
    /// reproducible twin of the wall-clock deadline cut: a test can pin the
    /// exact partial result a deadline would have produced.
    #[serde(default)]
    pub max_rounds: usize,
}

impl Default for AcoParams {
    fn default() -> Self {
        AcoParams {
            alpha: 0.25,
            lambda: 0.5,
            rho1: 4.0,
            rho2: 2.0,
            rho3: 2.0,
            rho4: 2.0,
            rho5: 0.4,
            beta_cp: 0.9,
            beta_size: 0.7,
            beta_io: 0.8,
            beta_convex: 0.4,
            p_end: 0.99,
            init_merit_sw: 100.0,
            init_merit_hw: 200.0,
            init_trail: 0.0,
            max_iterations: 400,
            max_rounds: 0,
        }
    }
}

impl AcoParams {
    /// Checks the parameter ranges the formulas assume.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first out-of-range
    /// parameter: `alpha`, `lambda` and the βs must lie in `(0, 1]` (βs
    /// strictly below 1 per Fig. 4.3.7), `p_end` in `(0, 1)`, the ρs must be
    /// non-negative, and `max_iterations` positive.
    pub fn validate(&self) -> Result<(), String> {
        let in01 = |v: f64| v > 0.0 && v <= 1.0;
        if !(self.alpha >= 0.0 && self.alpha <= 1.0) {
            return Err(format!("alpha must be in [0,1], got {}", self.alpha));
        }
        if self.lambda < 0.0 || self.lambda.is_nan() {
            return Err(format!("lambda must be non-negative, got {}", self.lambda));
        }
        for (name, v) in [
            ("rho1", self.rho1),
            ("rho2", self.rho2),
            ("rho3", self.rho3),
            ("rho4", self.rho4),
            ("rho5", self.rho5),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} must be a non-negative number, got {v}"));
            }
        }
        for (name, v) in [
            ("beta_cp", self.beta_cp),
            ("beta_size", self.beta_size),
            ("beta_io", self.beta_io),
            ("beta_convex", self.beta_convex),
        ] {
            if !in01(v) {
                return Err(format!("{name} must be in (0,1], got {v}"));
            }
        }
        if !(self.p_end > 0.0 && self.p_end < 1.0) {
            return Err(format!("p_end must be in (0,1), got {}", self.p_end));
        }
        if self.init_merit_sw <= 0.0 || self.init_merit_hw <= 0.0 {
            return Err("initial merits must be positive".to_string());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_5_1() {
        let p = AcoParams::default();
        assert_eq!(p.alpha, 0.25);
        assert_eq!(
            (p.rho1, p.rho2, p.rho3, p.rho4, p.rho5),
            (4.0, 2.0, 2.0, 2.0, 0.4)
        );
        assert_eq!(
            (p.beta_cp, p.beta_size, p.beta_io, p.beta_convex),
            (0.9, 0.7, 0.8, 0.4)
        );
        assert_eq!(p.p_end, 0.99);
        assert_eq!(
            (p.init_merit_sw, p.init_merit_hw, p.init_trail),
            (100.0, 200.0, 0.0)
        );
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = AcoParams {
            alpha: 1.5,
            ..AcoParams::default()
        };
        assert!(bad.validate().unwrap_err().contains("alpha"));
        let bad = AcoParams {
            beta_io: 0.0,
            ..AcoParams::default()
        };
        assert!(bad.validate().unwrap_err().contains("beta_io"));
        let bad = AcoParams {
            p_end: 1.0,
            ..AcoParams::default()
        };
        assert!(bad.validate().unwrap_err().contains("p_end"));
        let bad = AcoParams {
            rho3: -1.0,
            ..AcoParams::default()
        };
        assert!(bad.validate().unwrap_err().contains("rho3"));
        let bad = AcoParams {
            max_iterations: 0,
            ..AcoParams::default()
        };
        assert!(bad.validate().unwrap_err().contains("max_iterations"));
    }
}
