//! Ant-colony-optimisation primitives for ISE exploration.
//!
//! The exploration algorithm (thesis Ch. 3–4) is an ACO search over the
//! implementation options of every operation: ants repeatedly *choose* an
//! implementation option per operation (with probability driven by
//! pheromone *trail* and heuristic *merit*, Eq. 1), the trail is reinforced
//! or evaporated depending on whether the resulting schedule got faster
//! (Fig. 4.3.5), and the search *converges* once for every operation some
//! option's selected-probability (Eq. 3) exceeds `P_END`.
//!
//! This crate holds the algorithm-independent machinery:
//!
//! * [`AcoParams`] — every tunable of the paper (α, λ, ρ₁..ρ₅, the four β
//!   penalties, `P_END`, initial trail/merit values) with the §5.1 defaults;
//! * [`ImplChoice`] — a software or hardware implementation-option index;
//! * [`PheromoneStore`] — per-(operation, option) trail and merit values
//!   with the probability formulas of Eqs. 1–4;
//! * [`roulette`] — deterministic weighted random selection.
//!
//! The ISE-specific parts — the Ready-Matrix walk, the scheduling, the
//! merit function and the trail-update policy — live in `isex-core`.
//!
//! # Example
//!
//! ```
//! use isex_aco::{AcoParams, ImplChoice, PheromoneStore};
//! use rand::SeedableRng;
//!
//! let params = AcoParams::default();
//! // Two operations: one with 1 SW + 2 HW options, one with 1 SW + 0 HW.
//! let mut store = PheromoneStore::new(&[(1, 2), (1, 0)], &params);
//! store.add_trail(0, ImplChoice::Hw(1), 4.0);
//! let sp = store.selected_probability(0, ImplChoice::Hw(1));
//! assert!(sp > store.selected_probability(0, ImplChoice::Hw(0)));
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let pick = isex_aco::roulette(&mut rng, &[0.1, 0.7, 0.2]);
//! assert!(pick < 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod params;
mod store;

pub use params::AcoParams;
pub use store::{ImplChoice, PheromoneStore};

use rand::Rng;

/// Weighted roulette selection: returns an index of `weights` with
/// probability proportional to its (non-negative) weight.
///
/// Non-finite or negative weights are treated as zero. If every weight is
/// zero the selection is uniform.
///
/// # Panics
///
/// Panics if `weights` is empty.
pub fn roulette<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "cannot select from no options");
    let clean = |w: &f64| if w.is_finite() && *w > 0.0 { *w } else { 0.0 };
    let total: f64 = weights.iter().map(clean).sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        let w = clean(w);
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn roulette_prefers_heavy_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[roulette(&mut rng, &[1.0, 8.0, 1.0])] += 1;
        }
        assert!(counts[1] > counts[0] * 4);
        assert!(counts[1] > counts[2] * 4);
        assert!(
            counts[0] > 0 && counts[2] > 0,
            "light options still reachable"
        );
    }

    #[test]
    fn roulette_all_zero_is_uniform() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[roulette(&mut rng, &[0.0, 0.0, 0.0, 0.0])] += 1;
        }
        for c in counts {
            assert!(c > 700, "roughly uniform, got {counts:?}");
        }
    }

    #[test]
    fn roulette_ignores_nan_and_negative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let i = roulette(&mut rng, &[f64::NAN, -5.0, 1.0]);
            assert_eq!(i, 2);
        }
    }

    #[test]
    #[should_panic(expected = "no options")]
    fn roulette_empty_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        roulette(&mut rng, &[]);
    }

    #[test]
    fn roulette_is_deterministic_for_seed() {
        let picks = |seed: u64| -> Vec<usize> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| roulette(&mut rng, &[0.3, 0.3, 0.4]))
                .collect()
        };
        assert_eq!(picks(11), picks(11));
        assert_ne!(picks(11), picks(12), "different seeds diverge (w.h.p.)");
    }
}
