//! Text rendering of schedules: a cycle-by-slot timeline like the ones in
//! the thesis figures (Fig. 1.3.1, Fig. 4.0.2).

use crate::list::Schedule;
use crate::unit::SchedDfg;

/// Renders `schedule` as a per-cycle table. `label` names each node (e.g.
/// its mnemonic); multi-cycle instructions are shown at their issue cycle
/// with a `(xN)` latency suffix.
///
/// # Example
///
/// ```
/// use isex_dfg::Operand;
/// use isex_isa::MachineConfig;
/// use isex_sched::{display, list_schedule, Priority, SchedDfg, SchedOp, UnitClass};
///
/// let mut g = SchedDfg::new();
/// let op = SchedOp::new(1, 1, 1, UnitClass::Alu);
/// let a = g.add_node(op, vec![]);
/// let _b = g.add_node(op, vec![Operand::Node(a)]);
/// let s = list_schedule(&g, &MachineConfig::preset_2issue_4r2w(), Priority::Height);
/// let text = display::render(&g, &s, |id, _| format!("op{}", id.index()));
/// assert!(text.contains("C1"));
/// assert!(text.contains("op0"));
/// ```
pub fn render(
    dfg: &SchedDfg,
    schedule: &Schedule,
    mut label: impl FnMut(isex_dfg::NodeId, &crate::unit::SchedOp) -> String,
) -> String {
    let mut rows: Vec<Vec<String>> = vec![Vec::new(); schedule.length.max(1) as usize];
    for (id, node) in dfg.iter() {
        let cycle = schedule.start_of(id) as usize;
        let op = node.payload();
        let mut cell = label(id, op);
        if op.latency > 1 {
            cell.push_str(&format!(" (x{})", op.latency));
        }
        if cycle < rows.len() {
            rows[cycle].push(cell);
        }
    }
    let mut out = String::new();
    for (c, row) in rows.iter().enumerate() {
        out.push_str(&format!("C{:<3} | {}\n", c + 1, row.join("  ")));
    }
    out.push_str(&format!("= {} cycles\n", schedule.length));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, Priority};
    use crate::unit::{SchedOp, UnitClass};
    use isex_dfg::Operand;
    use isex_isa::MachineConfig;

    #[test]
    fn renders_cycles_and_latency_suffix() {
        let mut g = SchedDfg::new();
        let a = g.add_node(SchedOp::new(1, 1, 1, UnitClass::Alu), vec![]);
        let b = g.add_node(
            SchedOp::new(3, 1, 1, UnitClass::Asfu),
            vec![Operand::Node(a)],
        );
        let _c = g.add_node(
            SchedOp::new(1, 1, 1, UnitClass::Alu),
            vec![Operand::Node(b)],
        );
        let m = MachineConfig::preset_2issue_4r2w();
        let s = list_schedule(&g, &m, Priority::Height);
        let text = render(&g, &s, |id, _| format!("n{}", id.index()));
        assert!(text.contains("n1 (x3)"));
        assert!(text.contains("= 5 cycles"));
        assert_eq!(text.lines().count(), 6, "5 cycle rows + total");
    }

    #[test]
    fn co_issued_ops_share_a_row() {
        let mut g = SchedDfg::new();
        g.add_node(SchedOp::new(1, 1, 1, UnitClass::Alu), vec![]);
        g.add_node(SchedOp::new(1, 1, 1, UnitClass::Alu), vec![]);
        let m = MachineConfig::preset_2issue_4r2w();
        let s = list_schedule(&g, &m, Priority::Height);
        let text = render(&g, &s, |id, _| format!("n{}", id.index()));
        let first = text.lines().next().unwrap();
        assert!(first.contains("n0") && first.contains("n1"));
    }

    #[test]
    fn empty_schedule_renders_total_only() {
        let g = SchedDfg::new();
        let m = MachineConfig::default();
        let s = list_schedule(&g, &m, Priority::Height);
        let text = render(&g, &s, |_, _| String::new());
        assert!(text.contains("= 0 cycles"));
    }
}
