//! Struct-of-arrays hot-loop kernels: arena graph, exact quotient
//! collapse, incremental (cone-limited) timing and a counter-driven list
//! scheduler.
//!
//! The exploration loop evaluates thousands of ISE patches per round, and
//! each evaluation used to rebuild a pointer-rich [`SchedDfg`] quotient and
//! re-run full ASAP/ALAP/height passes over it. This module provides the
//! data-oriented replacements:
//!
//! * [`SoaGraph`] — latency/read/write/class vectors plus flat CSR
//!   adjacency arenas, no per-node allocations;
//! * [`collapse_soa`] — the quotient construction of
//!   [`collapse_groups`](crate::collapse::collapse_groups) replayed on the
//!   arrays, producing *bit-identical vertex numbering* (same Kahn order,
//!   same edge dedup) without emitting a `Dfg`;
//! * [`BaseTiming`] + the `*_incremental_into` kernels — persistent
//!   per-round ASAP/ALAP/height state updated only along the fan-in/out
//!   cones a patch actually dirties, with copy/recompute counters;
//! * [`schedule_len_counters`] — the list scheduler driven by ready
//!   counters and a completion heap instead of a per-cycle all-nodes
//!   rescan, decision-identical to [`list_schedule`](crate::list_schedule).
//!
//! # Determinism
//!
//! Every kernel here is documented (and tested) to reproduce its
//! `Dfg`-walking counterpart *exactly*: quotient vertex ids, schedule
//! lengths and all timing vectors are equal value for value, so a caller
//! may switch representations per evaluation without perturbing a single
//! downstream f64.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use isex_dfg::NodeSet;
use isex_isa::MachineConfig;

use crate::resources::ResourceTable;
use crate::unit::{SchedDfg, SchedOp, UnitClass};

/// A schedulable graph in struct-of-arrays form: per-node footprint
/// vectors plus compressed-sparse-row predecessor/successor arenas
/// (distinct neighbours, first-occurrence order — the same sequences
/// [`isex_dfg::Dfg::preds`]/[`succs`](isex_dfg::Dfg::succs) yield).
///
/// Node indices follow the source [`SchedDfg`] (or, for a quotient built
/// by [`collapse_soa`], the emission order of
/// [`collapse_groups`](crate::collapse::collapse_groups)); the index order
/// is topological.
#[derive(Clone, Debug, Default)]
pub struct SoaGraph {
    /// Latency in cycles per node.
    pub lat: Vec<u32>,
    /// Register read ports per node.
    pub reads: Vec<u32>,
    /// Register write ports per node.
    pub writes: Vec<u32>,
    /// Function-unit class per node.
    pub class: Vec<UnitClass>,
    pred_off: Vec<u32>,
    pred: Vec<u32>,
    succ_off: Vec<u32>,
    succ: Vec<u32>,
}

impl SoaGraph {
    /// Lowers `dfg` into arrays.
    pub fn from_sched(dfg: &SchedDfg) -> Self {
        let mut g = SoaGraph::default();
        g.rebuild(dfg);
        g
    }

    /// Rebuilds in place from `dfg`, reusing every buffer.
    pub fn rebuild(&mut self, dfg: &SchedDfg) {
        self.clear();
        for (_, n) in dfg.iter() {
            let op = n.payload();
            self.lat.push(op.latency);
            self.reads.push(op.reads as u32);
            self.writes.push(op.writes as u32);
            self.class.push(op.class);
        }
        self.pred_off.push(0);
        for id in dfg.node_ids() {
            self.pred.extend(dfg.preds(id).map(|p| p.index() as u32));
            self.pred_off.push(self.pred.len() as u32);
        }
        self.succ_off.push(0);
        for id in dfg.node_ids() {
            self.succ.extend(dfg.succs(id).map(|s| s.index() as u32));
            self.succ_off.push(self.succ.len() as u32);
        }
    }

    fn clear(&mut self) {
        self.lat.clear();
        self.reads.clear();
        self.writes.clear();
        self.class.clear();
        self.pred_off.clear();
        self.pred.clear();
        self.succ_off.clear();
        self.succ.clear();
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.lat.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.lat.is_empty()
    }

    /// Distinct predecessors of node `v`.
    pub fn preds(&self, v: usize) -> &[u32] {
        &self.pred[self.pred_off[v] as usize..self.pred_off[v + 1] as usize]
    }

    /// Distinct successors of node `v`.
    pub fn succs(&self, v: usize) -> &[u32] {
        &self.succ[self.succ_off[v] as usize..self.succ_off[v + 1] as usize]
    }
}

/// Earliest start of every node (resources ignored), written into `out`.
/// Equal to [`timing::asap`](crate::timing::asap) on the source graph.
pub fn asap_into(g: &SoaGraph, out: &mut Vec<u32>) {
    out.clear();
    out.resize(g.len(), 0);
    for v in 0..g.len() {
        let s = g
            .preds(v)
            .iter()
            .map(|&p| out[p as usize] + g.lat[p as usize])
            .max()
            .unwrap_or(0);
        out[v] = s;
    }
}

/// Schedule length implied by an ASAP vector of `g`.
pub fn length_from_asap(g: &SoaGraph, asap: &[u32]) -> u32 {
    (0..g.len()).map(|v| asap[v] + g.lat[v]).max().unwrap_or(0)
}

/// Latest start of every node such that everything finishes by `deadline`,
/// written into `out`. Equal to
/// [`timing::alap`](crate::timing::alap) on the source graph.
pub fn alap_into(g: &SoaGraph, deadline: u32, out: &mut Vec<u32>) {
    out.clear();
    out.resize(g.len(), 0);
    for v in (0..g.len()).rev() {
        let lat = g.lat[v];
        let s = g
            .succs(v)
            .iter()
            .map(|&s| out[s as usize])
            .min()
            .map(|earliest_succ| earliest_succ - lat)
            .unwrap_or(deadline - lat);
        out[v] = s;
    }
}

/// Latency-weighted height of every node (the
/// [`Priority::Height`](crate::Priority::Height) values), written into
/// `out`.
pub fn height_into(g: &SoaGraph, out: &mut Vec<i64>) {
    out.clear();
    out.resize(g.len(), 0);
    for v in (0..g.len()).rev() {
        out[v] = g.lat[v] as i64
            + g.succs(v)
                .iter()
                .map(|&s| out[s as usize])
                .max()
                .unwrap_or(0);
    }
}

/// Persistent per-round timing state of a base [`SoaGraph`]: ASAP, ALAP at
/// the dependence-only length, heights and the length itself. The
/// incremental kernels update quotient timing against this baseline,
/// touching only the cones an ISE patch dirties.
#[derive(Clone, Debug, Default)]
pub struct BaseTiming {
    /// ASAP start per base node.
    pub asap: Vec<u32>,
    /// ALAP start per base node at deadline [`BaseTiming::dep_len`].
    pub alap: Vec<u32>,
    /// Latency-weighted height per base node.
    pub height: Vec<i64>,
    /// Dependence-only schedule length of the base graph.
    pub dep_len: u32,
}

impl BaseTiming {
    /// Runs the three full passes once over `g`.
    pub fn of(g: &SoaGraph) -> Self {
        let mut t = BaseTiming::default();
        asap_into(g, &mut t.asap);
        t.dep_len = length_from_asap(g, &t.asap);
        alap_into(g, t.dep_len, &mut t.alap);
        height_into(g, &mut t.height);
        t
    }
}

/// Copy/recompute counters of the incremental timing kernels: `copied`
/// vertices took their value straight from the [`BaseTiming`] baseline,
/// `recomputed` vertices were inside a dirty cone. Their sum per pass is
/// the quotient size; the copied share is the work the incremental layer
/// removed relative to a full pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Vertices whose timing was copied from the baseline.
    pub copied: u64,
    /// Vertices whose timing was recomputed from neighbours.
    pub recomputed: u64,
}

impl IncrStats {
    /// Accumulates another pass' counters.
    pub fn absorb(&mut self, other: IncrStats) {
        self.copied += other.copied;
        self.recomputed += other.recomputed;
    }
}

/// The quotient graph produced by [`collapse_soa`]: arrays plus the
/// base→quotient mapping and each quotient vertex's origin.
#[derive(Clone, Debug, Default)]
pub struct Quotient {
    /// The quotient in SoA form; vertex ids match the emission order of
    /// [`collapse_groups`](crate::collapse::collapse_groups) exactly.
    pub graph: SoaGraph,
    /// For every base node, its quotient vertex.
    pub node_map: Vec<u32>,
    /// For every group (by input index), its quotient vertex.
    pub group_node: Vec<u32>,
    /// Origin of every quotient vertex: `base node index` for an
    /// un-collapsed single, or `-(1 + group index)` for a group vertex.
    pub orig: Vec<i64>,
}

impl Quotient {
    /// Returns `true` if quotient vertex `v` is a collapsed group.
    #[inline]
    pub fn is_group(&self, v: usize) -> bool {
        self.orig[v] < 0
    }
}

/// Reusable working memory for [`collapse_soa`].
#[derive(Clone, Debug, Default)]
pub struct QuotientScratch {
    group_of: Vec<i32>,
    vx: Vec<u32>,
    singles: Vec<u32>,
    edges: Vec<(u32, u32)>,
    indeg: Vec<u32>,
    osucc_off: Vec<u32>,
    queue: Vec<u32>,
    topo: Vec<u32>,
    new_id: Vec<u32>,
    counts: Vec<u32>,
}

/// Collapses each `(members, footprint)` group of `base` into a single
/// vertex, writing the quotient into `out`.
///
/// This is [`collapse_groups`](crate::collapse::collapse_groups) replayed
/// on arrays: the same vertex keys (groups first, then singles in index
/// order), the same deduplicated edge set, and the same vec-stack Kahn
/// walk (initial zero-indegree queue ascending, pop from the back), so the
/// emitted vertex numbering — which downstream scheduler tie-breaks depend
/// on — is identical. No `Dfg` is built and, at steady state, nothing is
/// allocated.
///
/// # Panics
///
/// Panics if group sets overlap or if some set is not convex, matching the
/// `Dfg` path.
pub fn collapse_soa(
    base: &SoaGraph,
    groups: &[(NodeSet, SchedOp)],
    s: &mut QuotientScratch,
    out: &mut Quotient,
) {
    let k = base.len();
    let gn = groups.len();

    s.group_of.clear();
    s.group_of.resize(k, -1);
    for (i, (set, _)) in groups.iter().enumerate() {
        for n in set {
            assert!(
                s.group_of[n.index()] < 0,
                "node {n:?} belongs to two ISE instances"
            );
            s.group_of[n.index()] = i as i32;
        }
    }

    // Vertex key per base node: groups take ids 0..gn, singles follow in
    // base-index order (the prefix-rank replacement for the O(n) scan the
    // Dfg path does per lookup).
    s.vx.clear();
    s.vx.reserve(k);
    s.singles.clear();
    for n in 0..k {
        if s.group_of[n] >= 0 {
            s.vx.push(s.group_of[n] as u32);
        } else {
            s.vx.push((gn + s.singles.len()) as u32);
            s.singles.push(n as u32);
        }
    }
    let vcount = gn + s.singles.len();

    // Deduplicated quotient edges, sorted — the same set, iterated in the
    // same (src, dst) order, as the Dfg path's BTreeSet.
    s.edges.clear();
    for n in 0..k {
        let dst = s.vx[n];
        for &p in base.preds(n) {
            let src = s.vx[p as usize];
            if src != dst {
                s.edges.push((src, dst));
            }
        }
    }
    s.edges.sort_unstable();
    s.edges.dedup();

    // Kahn topological sort, replicating the Dfg path exactly: vec-stack
    // queue seeded with zero-indegree vertices ascending, popped from the
    // back, successors scanned in dst-ascending order.
    s.indeg.clear();
    s.indeg.resize(vcount, 0);
    for &(_, d) in &s.edges {
        s.indeg[d as usize] += 1;
    }
    s.osucc_off.clear();
    s.osucc_off.resize(vcount + 1, 0);
    for &(src, _) in &s.edges {
        s.osucc_off[src as usize + 1] += 1;
    }
    for v in 0..vcount {
        s.osucc_off[v + 1] += s.osucc_off[v];
    }
    s.queue.clear();
    s.queue
        .extend((0..vcount as u32).filter(|&v| s.indeg[v as usize] == 0));
    s.topo.clear();
    while let Some(v) = s.queue.pop() {
        s.topo.push(v);
        let (lo, hi) = (s.osucc_off[v as usize], s.osucc_off[v as usize + 1]);
        for &(_, d) in &s.edges[lo as usize..hi as usize] {
            s.indeg[d as usize] -= 1;
            if s.indeg[d as usize] == 0 {
                s.queue.push(d);
            }
        }
    }
    assert_eq!(
        s.topo.len(),
        vcount,
        "quotient graph is cyclic: some ISE set is not convex"
    );
    s.new_id.clear();
    s.new_id.resize(vcount, 0);
    for (pos, &v) in s.topo.iter().enumerate() {
        s.new_id[v as usize] = pos as u32;
    }

    // Emit payload arrays in quotient-topological order.
    let q = &mut out.graph;
    q.clear();
    out.orig.clear();
    for &v in &s.topo {
        if (v as usize) < gn {
            let fp = &groups[v as usize].1;
            q.lat.push(fp.latency);
            q.reads.push(fp.reads as u32);
            q.writes.push(fp.writes as u32);
            q.class.push(fp.class);
            out.orig.push(-(1 + v as i64));
        } else {
            let n = s.singles[v as usize - gn] as usize;
            q.lat.push(base.lat[n]);
            q.reads.push(base.reads[n]);
            q.writes.push(base.writes[n]);
            q.class.push(base.class[n]);
            out.orig.push(n as i64);
        }
    }

    // Quotient adjacency in new-id space (CSR by counting; list order is
    // irrelevant — every consumer takes an order-free min/max/sum).
    s.counts.clear();
    s.counts.resize(vcount, 0);
    for &(_, d) in &s.edges {
        s.counts[s.new_id[d as usize] as usize] += 1;
    }
    q.pred_off.clear();
    q.pred_off.resize(vcount + 1, 0);
    for v in 0..vcount {
        q.pred_off[v + 1] = q.pred_off[v] + s.counts[v];
    }
    q.pred.clear();
    q.pred.resize(s.edges.len(), 0);
    s.counts.clear();
    s.counts.resize(vcount, 0);
    for &(src, d) in &s.edges {
        let nd = s.new_id[d as usize] as usize;
        let slot = q.pred_off[nd] + s.counts[nd];
        q.pred[slot as usize] = s.new_id[src as usize];
        s.counts[nd] += 1;
    }
    s.counts.clear();
    s.counts.resize(vcount, 0);
    for &(src, _) in &s.edges {
        s.counts[s.new_id[src as usize] as usize] += 1;
    }
    q.succ_off.clear();
    q.succ_off.resize(vcount + 1, 0);
    for v in 0..vcount {
        q.succ_off[v + 1] = q.succ_off[v] + s.counts[v];
    }
    q.succ.clear();
    q.succ.resize(s.edges.len(), 0);
    s.counts.clear();
    s.counts.resize(vcount, 0);
    for &(src, d) in &s.edges {
        let ns = s.new_id[src as usize] as usize;
        let slot = q.succ_off[ns] + s.counts[ns];
        q.succ[slot as usize] = s.new_id[d as usize];
        s.counts[ns] += 1;
    }

    out.node_map.clear();
    out.node_map
        .extend((0..k).map(|n| s.new_id[s.vx[n] as usize]));
    out.group_node.clear();
    out.group_node.extend((0..gn).map(|i| s.new_id[i]));
}

/// Quotient ASAP with cone-limited recomputation: vertices outside the
/// fan-out cones of patched nodes (group members and latency changes) copy
/// their baseline value; everything inside is recomputed. The result
/// equals a full [`asap_into`] pass over the quotient, value for value.
///
/// `base_lat` is the base graph's latency vector (to detect per-walk
/// latency patches on singles).
pub fn asap_incremental_into(
    q: &Quotient,
    base: &BaseTiming,
    base_lat: &[u32],
    out: &mut Vec<u32>,
    needs: &mut Vec<bool>,
) -> IncrStats {
    let g = &q.graph;
    let n = g.len();
    out.clear();
    out.resize(n, 0);
    needs.clear();
    needs.resize(n, false);
    let mut stats = IncrStats::default();
    for v in 0..n {
        let orig = q.orig[v];
        let dirty_self = orig < 0 || g.lat[v] != base_lat[orig as usize];
        if dirty_self || needs[v] {
            let start = g
                .preds(v)
                .iter()
                .map(|&p| out[p as usize] + g.lat[p as usize])
                .max()
                .unwrap_or(0);
            out[v] = start;
            stats.recomputed += 1;
            // The finish time is what successors observe; only a changed
            // finish (or a group vertex, which has no baseline) dirties
            // the fan-out.
            let finish_changed =
                orig < 0 || start + g.lat[v] != base.asap[orig as usize] + base_lat[orig as usize];
            if finish_changed {
                for &sc in g.succs(v) {
                    needs[sc as usize] = true;
                }
            }
        } else {
            out[v] = base.asap[orig as usize];
            stats.copied += 1;
        }
    }
    stats
}

/// Quotient ALAP at deadline `deadline` with cone-limited recomputation
/// against the baseline ALAP (taken at the base dependence length and
/// shifted uniformly — exact for the integer min/minus recurrence). The
/// result equals a full [`alap_into`] pass at `deadline`.
pub fn alap_incremental_into(
    q: &Quotient,
    base: &BaseTiming,
    base_lat: &[u32],
    deadline: u32,
    out: &mut Vec<u32>,
    needs: &mut Vec<bool>,
) -> IncrStats {
    let g = &q.graph;
    let n = g.len();
    let shift = deadline as i64 - base.dep_len as i64;
    out.clear();
    out.resize(n, 0);
    needs.clear();
    needs.resize(n, false);
    let mut stats = IncrStats::default();
    for v in (0..n).rev() {
        let orig = q.orig[v];
        let dirty_self = orig < 0 || g.lat[v] != base_lat[orig as usize];
        if dirty_self || needs[v] {
            let lat = g.lat[v];
            let a = g
                .succs(v)
                .iter()
                .map(|&sc| out[sc as usize])
                .min()
                .map(|earliest_succ| earliest_succ - lat)
                .unwrap_or(deadline - lat);
            out[v] = a;
            stats.recomputed += 1;
            // Predecessors observe this vertex's start; a shifted-baseline
            // match means their min is undisturbed.
            let start_changed = orig < 0 || a as i64 != base.alap[orig as usize] as i64 + shift;
            if start_changed {
                for &p in g.preds(v) {
                    needs[p as usize] = true;
                }
            }
        } else {
            out[v] = (base.alap[orig as usize] as i64 + shift) as u32;
            stats.copied += 1;
        }
    }
    stats
}

/// Quotient heights with cone-limited recomputation (only the fan-in cone
/// of a group or latency patch is revisited). The result equals a full
/// [`height_into`] pass over the quotient.
pub fn height_incremental_into(
    q: &Quotient,
    base: &BaseTiming,
    base_lat: &[u32],
    out: &mut Vec<i64>,
    needs: &mut Vec<bool>,
) -> IncrStats {
    let g = &q.graph;
    let n = g.len();
    out.clear();
    out.resize(n, 0);
    needs.clear();
    needs.resize(n, false);
    let mut stats = IncrStats::default();
    for v in (0..n).rev() {
        let orig = q.orig[v];
        let dirty_self = orig < 0 || g.lat[v] != base_lat[orig as usize];
        if dirty_self || needs[v] {
            let h = g.lat[v] as i64
                + g.succs(v)
                    .iter()
                    .map(|&sc| out[sc as usize])
                    .max()
                    .unwrap_or(0);
            out[v] = h;
            stats.recomputed += 1;
            if orig < 0 || h != base.height[orig as usize] {
                for &p in g.preds(v) {
                    needs[p as usize] = true;
                }
            }
        } else {
            out[v] = base.height[orig as usize];
            stats.copied += 1;
        }
    }
    stats
}

/// Reusable buffers for [`schedule_len_counters`].
#[derive(Debug, Default)]
pub struct CounterSchedScratch {
    start: Vec<u32>,
    pending: Vec<u32>,
    ready: Vec<u32>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    resources: Option<ResourceTable>,
}

/// List-schedules `g` on `machine` with the given priority values,
/// returning the makespan.
///
/// Decision-identical to
/// [`list_schedule_len`](crate::list_schedule_len): per cycle the
/// data-ready set, its `(-priority, index)` order and the greedy resource
/// admissions are exactly those of the per-cycle rescan — but readiness is
/// maintained by predecessor counters plus a completion heap, so a cycle
/// costs O(ready) instead of O(nodes × edges), and cycles in which nothing
/// can start are skipped outright (the rescan path idles through them
/// issuing nothing, which cannot change any decision).
///
/// # Panics
///
/// Panics if some operation's port demand exceeds the machine even in an
/// empty cycle, like the rescan path.
pub fn schedule_len_counters(
    g: &SoaGraph,
    machine: &MachineConfig,
    prio: &[i64],
    s: &mut CounterSchedScratch,
) -> u32 {
    let k = g.len();
    for v in 0..k {
        assert!(
            g.reads[v] as usize <= machine.read_ports
                && g.writes[v] as usize <= machine.write_ports,
            "operation {v} demands {}R/{}W, machine has {}R/{}W",
            g.reads[v],
            g.writes[v],
            machine.read_ports,
            machine.write_ports
        );
    }
    s.start.clear();
    s.start.resize(k, 0);
    s.pending.clear();
    s.pending
        .extend((0..k).map(|v| g.pred_off[v + 1] - g.pred_off[v]));
    s.ready.clear();
    s.ready
        .extend((0..k as u32).filter(|&v| s.pending[v as usize] == 0));
    s.heap.clear();
    let rt = s
        .resources
        .get_or_insert_with(|| ResourceTable::new(*machine));
    rt.reset(*machine);
    let mut remaining = k;
    let mut cycle: u32 = 0;

    while remaining > 0 {
        while let Some(&Reverse((finish, node))) = s.heap.peek() {
            if finish > cycle {
                break;
            }
            s.heap.pop();
            for &sc in g.succs(node as usize) {
                s.pending[sc as usize] -= 1;
                if s.pending[sc as usize] == 0 {
                    s.ready.push(sc);
                }
            }
        }
        if s.ready.is_empty() {
            // Nothing can become ready before the next completion; the
            // rescan path burns these cycles issuing nothing.
            let &Reverse((finish, _)) = s.heap.peek().expect("in-flight work exists");
            cycle = finish;
            continue;
        }
        s.ready.sort_unstable_by_key(|&v| (-prio[v as usize], v));
        let mut keep = 0;
        for i in 0..s.ready.len() {
            let v = s.ready[i] as usize;
            let op = SchedOp {
                latency: g.lat[v],
                reads: g.reads[v] as usize,
                writes: g.writes[v] as usize,
                class: g.class[v],
            };
            if rt.can_issue(cycle, &op) {
                rt.commit(cycle, &op);
                s.start[v] = cycle;
                s.heap.push(Reverse((cycle + g.lat[v], v as u32)));
                remaining -= 1;
            } else {
                s.ready[keep] = v as u32;
                keep += 1;
            }
        }
        s.ready.truncate(keep);
        cycle += 1;
    }

    (0..k).map(|v| s.start[v] + g.lat[v]).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::collapse_groups;
    use crate::list::{list_schedule_len, ListScratch, Priority};
    use crate::timing;
    use isex_dfg::{NodeId, Operand};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn alu(lat: u32) -> SchedOp {
        SchedOp::new(lat, 1, 1, UnitClass::Alu)
    }

    /// Random DAG with varied latencies/classes, operands drawn from
    /// earlier nodes (so index order is topological by construction).
    fn random_dfg(rng: &mut StdRng, k: usize) -> SchedDfg {
        let mut g = SchedDfg::new();
        let x = g.live_in();
        for i in 0..k {
            let mut operands = Vec::new();
            if i > 0 {
                for _ in 0..rng.gen_range(0..=3usize.min(i)) {
                    operands.push(Operand::Node(NodeId::new(rng.gen_range(0..i) as u32)));
                }
            }
            if operands.is_empty() {
                operands.push(Operand::LiveIn(x));
            }
            let class = match rng.gen_range(0..4u32) {
                0 => UnitClass::Mult,
                1 => UnitClass::Mem,
                _ => UnitClass::Alu,
            };
            let id = g.add_node(
                SchedOp::new(rng.gen_range(1..4), operands.len().min(2), 1, class),
                operands,
            );
            if rng.gen_bool(0.3) {
                g.set_live_out(id, true);
            }
        }
        g
    }

    /// A random family of disjoint convex groups of `dfg` (contiguous
    /// index ranges are always convex).
    fn random_groups(rng: &mut StdRng, k: usize) -> Vec<(NodeSet, SchedOp)> {
        let mut groups = Vec::new();
        let mut next = 0usize;
        while next + 1 < k && groups.len() < 3 {
            let lo = rng.gen_range(next..k - 1);
            let hi = rng.gen_range(lo + 1..(lo + 4).min(k));
            let mut set = NodeSet::new(k);
            for n in lo..=hi {
                set.insert(NodeId::new(n as u32));
            }
            groups.push((
                set,
                SchedOp::new(rng.gen_range(1..3), 2, 1, UnitClass::Asfu),
            ));
            next = hi + 1;
        }
        groups
    }

    #[test]
    fn soa_timing_matches_dfg_timing() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let k = rng.gen_range(1..40);
            let dfg = random_dfg(&mut rng, k);
            let g = SoaGraph::from_sched(&dfg);
            let mut asap = Vec::new();
            asap_into(&g, &mut asap);
            assert_eq!(asap, timing::asap(&dfg));
            let len = length_from_asap(&g, &asap);
            assert_eq!(len, timing::dep_length(&dfg));
            let mut alap = Vec::new();
            alap_into(&g, len + 3, &mut alap);
            assert_eq!(alap, timing::alap(&dfg, len + 3));
            let mut h = Vec::new();
            height_into(&g, &mut h);
            assert_eq!(h, Priority::Height.values(&dfg));
        }
    }

    #[test]
    fn collapse_soa_replicates_dfg_quotient() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut scratch = QuotientScratch::default();
        let mut q = Quotient::default();
        for _ in 0..40 {
            let k = rng.gen_range(4..40);
            let dfg = random_dfg(&mut rng, k);
            let groups = random_groups(&mut rng, dfg.len());
            let reference = collapse_groups(&dfg, &groups);
            let base = SoaGraph::from_sched(&dfg);
            collapse_soa(&base, &groups, &mut scratch, &mut q);
            assert_eq!(q.graph.len(), reference.dfg.len(), "vertex count");
            assert_eq!(
                q.node_map,
                reference
                    .node_map
                    .iter()
                    .map(|n| n.index() as u32)
                    .collect::<Vec<_>>(),
                "node_map must match vertex numbering exactly"
            );
            assert_eq!(
                q.group_node,
                reference
                    .group_nodes
                    .iter()
                    .map(|n| n.index() as u32)
                    .collect::<Vec<_>>()
            );
            for v in 0..q.graph.len() {
                let vid = NodeId::new(v as u32);
                let op = reference.dfg.node(vid).payload();
                assert_eq!(q.graph.lat[v], op.latency);
                assert_eq!(q.graph.reads[v] as usize, op.reads);
                assert_eq!(q.graph.writes[v] as usize, op.writes);
                assert_eq!(q.graph.class[v], op.class);
                let mut soa_preds: Vec<u32> = q.graph.preds(v).to_vec();
                soa_preds.sort_unstable();
                let mut dfg_preds: Vec<u32> =
                    reference.dfg.preds(vid).map(|p| p.index() as u32).collect();
                dfg_preds.sort_unstable();
                assert_eq!(soa_preds, dfg_preds, "pred set of vertex {v}");
            }
        }
    }

    #[test]
    fn counter_scheduler_matches_rescan_scheduler() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut list_scratch = ListScratch::new();
        let mut soa_scratch = CounterSchedScratch::default();
        let machines = [
            MachineConfig::preset_2issue_4r2w(),
            MachineConfig::preset_4issue_10r5w(),
            MachineConfig::new(1, 4, 2),
        ];
        for i in 0..40 {
            let k = rng.gen_range(1..50);
            let dfg = random_dfg(&mut rng, k);
            let g = SoaGraph::from_sched(&dfg);
            let mut prio = Vec::new();
            height_into(&g, &mut prio);
            let m = machines[i % machines.len()];
            let expect = list_schedule_len(&dfg, &m, Priority::Height, &mut list_scratch);
            let got = schedule_len_counters(&g, &m, &prio, &mut soa_scratch);
            assert_eq!(got, expect, "graph {i}");
        }
    }

    #[test]
    fn counter_scheduler_handles_blocking_asfu() {
        let mut g = SchedDfg::new();
        let ise = SchedOp::new(3, 2, 1, UnitClass::Asfu);
        g.add_node(ise, vec![]);
        g.add_node(ise, vec![]);
        let mut blocking = MachineConfig::preset_4issue_10r5w();
        blocking.asfu_pipelined = false;
        let soa = SoaGraph::from_sched(&g);
        let mut prio = Vec::new();
        height_into(&soa, &mut prio);
        let mut scratch = CounterSchedScratch::default();
        assert_eq!(
            schedule_len_counters(&soa, &blocking, &prio, &mut scratch),
            6
        );
    }

    #[test]
    fn incremental_timing_matches_full_passes() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut scratch = QuotientScratch::default();
        let mut q = Quotient::default();
        let (mut asap, mut alap, mut needs) = (Vec::new(), Vec::new(), Vec::new());
        let mut height = Vec::new();
        for _ in 0..40 {
            let k = rng.gen_range(4..40);
            let dfg = random_dfg(&mut rng, k);
            let base = SoaGraph::from_sched(&dfg);
            let bt = BaseTiming::of(&base);
            let groups = random_groups(&mut rng, dfg.len());
            // Patch a few latencies, as a walk's software choices would.
            let mut patched = base.clone();
            for _ in 0..rng.gen_range(0..4) {
                let n = rng.gen_range(0..patched.len());
                patched.lat[n] = rng.gen_range(1..4);
            }
            collapse_soa(&patched, &groups, &mut scratch, &mut q);
            let st = asap_incremental_into(&q, &bt, &base.lat, &mut asap, &mut needs);
            let mut full = Vec::new();
            asap_into(&q.graph, &mut full);
            assert_eq!(asap, full, "incremental ASAP diverged");
            assert_eq!(st.copied + st.recomputed, q.graph.len() as u64);
            let len = length_from_asap(&q.graph, &asap);
            alap_incremental_into(&q, &bt, &base.lat, len + 2, &mut alap, &mut needs);
            let mut full_alap = Vec::new();
            alap_into(&q.graph, len + 2, &mut full_alap);
            assert_eq!(alap, full_alap, "incremental ALAP diverged");
            height_incremental_into(&q, &bt, &base.lat, &mut height, &mut needs);
            let mut full_h = Vec::new();
            height_into(&q.graph, &mut full_h);
            assert_eq!(height, full_h, "incremental height diverged");
        }
    }

    #[test]
    fn incremental_copy_dominates_far_from_the_patch() {
        // Long chain, group at the very end: everything before the group's
        // fan-in cone must be copied, not recomputed.
        let mut g = SchedDfg::new();
        let mut prev = g.add_node(alu(1), vec![]);
        for _ in 0..30 {
            prev = g.add_node(alu(1), vec![Operand::Node(prev)]);
        }
        let k = g.len();
        let mut set = NodeSet::new(k);
        set.insert(NodeId::new(k as u32 - 2));
        set.insert(NodeId::new(k as u32 - 1));
        let base = SoaGraph::from_sched(&g);
        let bt = BaseTiming::of(&base);
        let mut scratch = QuotientScratch::default();
        let mut q = Quotient::default();
        collapse_soa(
            &base,
            &[(set, SchedOp::new(1, 2, 1, UnitClass::Asfu))],
            &mut scratch,
            &mut q,
        );
        let (mut asap, mut needs) = (Vec::new(), Vec::new());
        let st = asap_incremental_into(&q, &bt, &base.lat, &mut asap, &mut needs);
        assert!(
            st.copied >= 28,
            "ASAP outside the tail cone must be copied: {st:?}"
        );
        let mut height = Vec::new();
        let sh = height_incremental_into(&q, &bt, &base.lat, &mut height, &mut needs);
        // Heights flow sink-to-source: the patched tail dirties the whole
        // fan-in cone here (a chain), so nearly everything recomputes.
        assert_eq!(sh.copied + sh.recomputed, q.graph.len() as u64);
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let g = SoaGraph::default();
        let m = MachineConfig::default();
        let mut scratch = CounterSchedScratch::default();
        assert_eq!(schedule_len_counters(&g, &m, &[], &mut scratch), 0);
    }
}
