//! Schedulable units and the lowering from ISA operations.
//!
//! The scheduler does not care what an instruction computes, only what it
//! costs: its latency in cycles, its register-port demand in the issue
//! cycle, and which function-unit class it occupies. [`SchedOp`] carries
//! exactly that, so normal PISA instructions and collapsed ISEs are
//! scheduled uniformly.

use isex_dfg::{Dfg, Operand};
use isex_isa::{OpClass, ProgramDfg};
use serde::{Deserialize, Serialize};

/// Function-unit class a schedulable unit occupies during issue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UnitClass {
    /// A core integer ALU.
    Alu,
    /// The integer multiplier.
    Mult,
    /// A memory port (load or store).
    Mem,
    /// Branch unit.
    Branch,
    /// The application-specific functional unit executing an ISE.
    Asfu,
}

impl From<OpClass> for UnitClass {
    fn from(c: OpClass) -> Self {
        match c {
            OpClass::IntAlu => UnitClass::Alu,
            OpClass::IntMult => UnitClass::Mult,
            OpClass::Load | OpClass::Store => UnitClass::Mem,
            OpClass::Branch => UnitClass::Branch,
        }
    }
}

/// The scheduling-relevant footprint of one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedOp {
    /// Latency in cycles (successors become ready `latency` cycles after
    /// issue). At least 1.
    pub latency: u32,
    /// Register-file read ports consumed in the issue cycle.
    pub reads: usize,
    /// Register-file write ports consumed (modelled in the issue cycle).
    pub writes: usize,
    /// Which function unit the instruction occupies.
    pub class: UnitClass,
}

impl SchedOp {
    /// Creates a unit; clamps latency to at least one cycle.
    pub fn new(latency: u32, reads: usize, writes: usize, class: UnitClass) -> Self {
        SchedOp {
            latency: latency.max(1),
            reads,
            writes,
            class,
        }
    }
}

/// A DFG in schedulable form.
///
/// # Topological-order invariant
///
/// Every timing and scheduling pass over a `SchedDfg` visits nodes in
/// index order and requires that order to be topological: each operand of
/// a node must have a smaller index than the node itself. Graphs built via
/// [`isex_dfg::Dfg::add_node`] satisfy this by construction; graphs
/// obtained any other way (deserialization, hand assembly) must be
/// validated before analysis — debug builds assert the invariant edge by
/// edge inside [`crate::timing`], release builds trust it.
pub type SchedDfg = Dfg<SchedOp>;

/// Lowers an ISA-level DFG to schedulable form with every operation on its
/// (single-cycle) software implementation option.
///
/// Port demand is derived from the operands: each distinct register-borne
/// operand ([`Operand::Node`] or [`Operand::LiveIn`]) costs one read port;
/// immediates are free. Every value-producing operation costs one write
/// port; stores and branches write nothing.
///
/// # Example
///
/// ```
/// use isex_isa::{Opcode, Operation, ProgramDfg};
/// use isex_dfg::Operand;
/// use isex_sched::unit::{lower, UnitClass};
///
/// let mut dfg = ProgramDfg::new();
/// let x = dfg.live_in();
/// let a = dfg.add_node(Operation::new(Opcode::Mult), vec![Operand::LiveIn(x), Operand::LiveIn(x)]);
/// let s = lower(&dfg);
/// let op = s.node(a).payload();
/// assert_eq!((op.reads, op.writes), (1, 1)); // x read once
/// assert_eq!(op.class, UnitClass::Mult);
/// ```
pub fn lower(dfg: &ProgramDfg) -> SchedDfg {
    dfg.map(|id, op| {
        let node = dfg.node(id);
        SchedOp::new(
            op.io_table().software()[0].delay_cycles,
            register_reads(node.operands()),
            register_writes(op.opcode().class()),
            op.opcode().class().into(),
        )
    })
}

/// Number of register read ports an operand list demands (distinct
/// register-borne values).
pub fn register_reads(operands: &[Operand]) -> usize {
    let mut seen: Vec<Operand> = Vec::new();
    for op in operands {
        match op {
            Operand::Node(_) | Operand::LiveIn(_) => {
                if !seen.contains(op) {
                    seen.push(*op);
                }
            }
            Operand::Const(_) => {}
        }
    }
    seen.len()
}

/// Number of register write ports an operation class demands.
pub fn register_writes(class: OpClass) -> usize {
    match class {
        OpClass::Store | OpClass::Branch => 0,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isex_isa::{Opcode, Operation};

    #[test]
    fn lower_counts_ports() {
        let mut dfg = ProgramDfg::new();
        let x = dfg.live_in();
        let y = dfg.live_in();
        let a = dfg.add_node(
            Operation::new(Opcode::Add),
            vec![Operand::LiveIn(x), Operand::LiveIn(y)],
        );
        let b = dfg.add_node(
            Operation::new(Opcode::Sll),
            vec![Operand::Node(a), Operand::Const(3)],
        );
        let st = dfg.add_node(
            Operation::new(Opcode::Sw),
            vec![Operand::Node(b), Operand::LiveIn(x)],
        );
        let s = lower(&dfg);
        assert_eq!(s.node(a).payload(), &SchedOp::new(1, 2, 1, UnitClass::Alu));
        assert_eq!(s.node(b).payload(), &SchedOp::new(1, 1, 1, UnitClass::Alu));
        assert_eq!(s.node(st).payload(), &SchedOp::new(1, 2, 0, UnitClass::Mem));
    }

    #[test]
    fn duplicate_register_operand_costs_one_port() {
        assert_eq!(
            register_reads(&[
                Operand::LiveIn(isex_dfg::ValueId::new(0)),
                Operand::LiveIn(isex_dfg::ValueId::new(0))
            ]),
            1
        );
        assert_eq!(register_reads(&[Operand::Const(1), Operand::Const(2)]), 0);
    }

    #[test]
    fn latency_clamped_to_one() {
        assert_eq!(SchedOp::new(0, 1, 1, UnitClass::Alu).latency, 1);
    }

    #[test]
    fn writes_by_class() {
        assert_eq!(register_writes(OpClass::IntAlu), 1);
        assert_eq!(register_writes(OpClass::Load), 1);
        assert_eq!(register_writes(OpClass::Store), 0);
        assert_eq!(register_writes(OpClass::Branch), 0);
    }
}
