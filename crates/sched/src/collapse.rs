//! Collapsing ISE subgraphs into single schedulable units.
//!
//! ISE replacement (§3.1, final design-flow stage) substitutes matched
//! subgraphs with single ISE instructions, after which "the code is
//! scheduled again to obtain execution time" (§5.1). [`collapse`] performs
//! the substitution on a [`SchedDfg`]: each selected subgraph becomes one
//! node whose latency/port footprint the caller supplies, and all edges are
//! re-routed through the quotient graph.

use isex_dfg::{Dfg, NodeId, NodeSet, Operand};

use crate::unit::{SchedDfg, SchedOp};

/// One ISE instance to collapse: the member nodes and the footprint of the
/// resulting single instruction.
#[derive(Clone, Debug)]
pub struct IseUnit {
    /// Member operations (must be convex and pairwise disjoint from other
    /// collapsed units).
    pub nodes: NodeSet,
    /// Footprint of the collapsed instruction (latency = ceil of the ASFU
    /// critical delay, reads = `IN(S)`, writes = `OUT(S)`, class `Asfu`).
    pub op: SchedOp,
}

/// The result of a collapse: the quotient graph plus the node mapping.
#[derive(Clone, Debug)]
pub struct Collapsed {
    /// The quotient graph: one node per un-collapsed operation and per ISE.
    pub dfg: SchedDfg,
    /// For every original node, the quotient node that now contains it.
    pub node_map: Vec<NodeId>,
    /// For every ISE (by input index), its quotient node.
    pub ise_nodes: Vec<NodeId>,
}

/// Payload-generic version of [`Collapsed`], produced by
/// [`collapse_groups`].
#[derive(Clone, Debug)]
pub struct CollapsedGraph<N> {
    /// The quotient graph.
    pub dfg: Dfg<N>,
    /// For every original node, the quotient node that now contains it.
    pub node_map: Vec<NodeId>,
    /// For every collapsed group (by input index), its quotient node.
    pub group_nodes: Vec<NodeId>,
}

/// Collapses each subgraph of `ises` into a single node.
///
/// # Panics
///
/// Panics if the ISE node sets overlap, or if the quotient graph is cyclic
/// (which happens exactly when some set is not convex).
///
/// # Example
///
/// ```
/// use isex_dfg::{NodeSet, Operand};
/// use isex_sched::collapse::{collapse, IseUnit};
/// use isex_sched::{SchedDfg, SchedOp, UnitClass};
///
/// let mut g = SchedDfg::new();
/// let op = SchedOp::new(1, 1, 1, UnitClass::Alu);
/// let a = g.add_node(op, vec![]);
/// let b = g.add_node(op, vec![Operand::Node(a)]);
/// let c = g.add_node(op, vec![Operand::Node(b)]);
/// let mut s = NodeSet::new(3);
/// s.insert(b);
/// s.insert(c);
/// let ise = IseUnit { nodes: s, op: SchedOp::new(1, 1, 1, UnitClass::Asfu) };
/// let out = collapse(&g, &[ise]);
/// assert_eq!(out.dfg.len(), 2); // a + the ISE
/// ```
pub fn collapse(dfg: &SchedDfg, ises: &[IseUnit]) -> Collapsed {
    let groups: Vec<(NodeSet, SchedOp)> = ises.iter().map(|i| (i.nodes.clone(), i.op)).collect();
    let out = collapse_groups(dfg, &groups);
    Collapsed {
        dfg: out.dfg,
        node_map: out.node_map,
        ise_nodes: out.group_nodes,
    }
}

/// Collapses each `(set, payload)` group of any payload-typed DFG into a
/// single node carrying `payload`. Edges are deduplicated and re-routed
/// through the quotient graph; the group node's operands are the distinct
/// external inputs of the set (constants are dropped — they are hard-wired
/// into the collapsed unit).
///
/// # Panics
///
/// Panics if group sets overlap or if the quotient graph is cyclic (i.e.
/// some set is not convex).
pub fn collapse_groups<N: Clone>(dfg: &Dfg<N>, groups: &[(NodeSet, N)]) -> CollapsedGraph<N> {
    let k = dfg.len();
    let ises = groups;
    // group[n] = Some(i) if n belongs to ISE i.
    let mut group: Vec<Option<usize>> = vec![None; k];
    for (i, ise) in ises.iter().enumerate() {
        for n in &ise.0 {
            assert!(
                group[n.index()].is_none(),
                "node {n:?} belongs to two ISE instances"
            );
            group[n.index()] = Some(i);
        }
    }

    // Quotient vertices: ISEs first (stable ids), then singleton nodes.
    // qid assignment happens during topological emission below; here we
    // only need a canonical vertex key.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    enum Vertex {
        Ise(usize),
        Single(usize),
    }
    let vertex_of = |n: NodeId| -> Vertex {
        match group[n.index()] {
            Some(i) => Vertex::Ise(i),
            None => Vertex::Single(n.index()),
        }
    };

    // Build quotient vertex list and adjacency (dedup edges).
    let mut vertices: Vec<Vertex> = Vec::new();
    for i in 0..ises.len() {
        vertices.push(Vertex::Ise(i));
    }
    for (n, g) in group.iter().enumerate().take(k) {
        if g.is_none() {
            vertices.push(Vertex::Single(n));
        }
    }
    let index_of = |v: Vertex| -> usize {
        match v {
            Vertex::Ise(i) => i,
            Vertex::Single(n) => {
                // singles keep relative order after the ISE block
                ises.len() + (0..n).filter(|&m| group[m].is_none()).count()
            }
        }
    };
    let vcount = vertices.len();
    let mut q_preds: Vec<Vec<usize>> = vec![Vec::new(); vcount];
    let mut q_succ_count: Vec<usize> = vec![0; vcount];
    // BTreeSet keeps edge iteration deterministic (HashSet's per-instance
    // keys would randomise the quotient topological order).
    let mut edge_seen: std::collections::BTreeSet<(usize, usize)> =
        std::collections::BTreeSet::new();
    for n in 0..k {
        let nid = NodeId::new(n as u32);
        let dst = index_of(vertex_of(nid));
        for p in dfg.preds(nid) {
            let src = index_of(vertex_of(p));
            if src != dst && edge_seen.insert((src, dst)) {
                q_preds[dst].push(src);
                q_succ_count[src] += 1;
            }
        }
    }

    // Kahn topological sort of the quotient graph.
    let mut indeg: Vec<usize> = q_preds.iter().map(Vec::len).collect();
    let mut queue: Vec<usize> = (0..vcount).filter(|&v| indeg[v] == 0).collect();
    queue.sort_unstable();
    let mut topo: Vec<usize> = Vec::with_capacity(vcount);
    let mut q_succs: Vec<Vec<usize>> = vec![Vec::new(); vcount];
    for (&(src, dst), _) in edge_seen.iter().map(|e| (e, ())) {
        q_succs[src].push(dst);
    }
    while let Some(v) = queue.pop() {
        topo.push(v);
        for &s in &q_succs[v] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    assert_eq!(
        topo.len(),
        vcount,
        "quotient graph is cyclic: some ISE set is not convex"
    );

    // Emit the new graph in quotient-topological order.
    let mut out: Dfg<N> = Dfg::new();
    // Live-ins must be re-declared in the new graph; ids are preserved.
    let mut livein_map = Vec::with_capacity(dfg.live_in_count());
    for _ in 0..dfg.live_in_count() {
        livein_map.push(out.live_in());
    }
    let mut new_id: Vec<Option<NodeId>> = vec![None; vcount];
    for &v in &topo {
        let (payload, operands, live_out) = match vertices[v] {
            Vertex::Single(n) => {
                let nid = NodeId::new(n as u32);
                let node = dfg.node(nid);
                let ops = node
                    .operands()
                    .iter()
                    .map(|op| match *op {
                        Operand::Node(p) => {
                            Operand::Node(new_id[index_of(vertex_of(p))].expect("topo order"))
                        }
                        Operand::LiveIn(x) => Operand::LiveIn(livein_map[x.index()]),
                        c @ Operand::Const(_) => c,
                    })
                    .collect();
                (node.payload().clone(), ops, node.is_live_out())
            }
            Vertex::Ise(i) => {
                let ise = &ises[i];
                // External inputs, deduplicated, in member order.
                let mut ops: Vec<Operand> = Vec::new();
                for n in &ise.0 {
                    for op in dfg.node(n).operands() {
                        let mapped = match *op {
                            Operand::Node(p) => {
                                if ise.0.contains(p) {
                                    continue; // internal edge
                                }
                                Operand::Node(new_id[index_of(vertex_of(p))].expect("topo order"))
                            }
                            Operand::LiveIn(x) => Operand::LiveIn(livein_map[x.index()]),
                            Operand::Const(_) => continue, // hard-wired in the ASFU
                        };
                        if !ops.contains(&mapped) {
                            ops.push(mapped);
                        }
                    }
                }
                let live_out = ise.0.iter().any(|n| dfg.node(n).is_live_out());
                (ise.1.clone(), ops, live_out)
            }
        };
        let id = out.add_node(payload, operands);
        out.set_live_out(id, live_out);
        new_id[v] = Some(id);
    }

    let node_map = (0..k)
        .map(|n| new_id[index_of(vertex_of(NodeId::new(n as u32)))].expect("all emitted"))
        .collect();
    let group_nodes = (0..ises.len())
        .map(|i| new_id[i].expect("all emitted"))
        .collect();
    CollapsedGraph {
        dfg: out,
        node_map,
        group_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::UnitClass;

    fn alu() -> SchedOp {
        SchedOp::new(1, 1, 1, UnitClass::Alu)
    }

    fn asfu(lat: u32) -> SchedOp {
        SchedOp::new(lat, 2, 1, UnitClass::Asfu)
    }

    #[test]
    fn collapse_rewires_edges() {
        // a -> b -> c -> d; collapse {b, c}.
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(), vec![]);
        let b = g.add_node(alu(), vec![Operand::Node(a)]);
        let c = g.add_node(alu(), vec![Operand::Node(b)]);
        let d = g.add_node(alu(), vec![Operand::Node(c)]);
        g.set_live_out(d, true);
        let mut s = NodeSet::new(4);
        s.insert(b);
        s.insert(c);
        let out = collapse(
            &g,
            &[IseUnit {
                nodes: s,
                op: asfu(1),
            }],
        );
        assert_eq!(out.dfg.len(), 3);
        let ise = out.ise_nodes[0];
        assert_eq!(out.dfg.preds(ise).count(), 1);
        assert_eq!(out.dfg.succs(ise).count(), 1);
        assert_eq!(out.node_map[b.index()], ise);
        assert_eq!(out.node_map[c.index()], ise);
        assert_eq!(out.dfg.node(ise).payload().class, UnitClass::Asfu);
    }

    #[test]
    fn external_inputs_dedup_and_consts_dropped() {
        // x,y live-ins; m = x+y; n = m+x; ISE {m, n}: inputs {x, y} only.
        let mut g = SchedDfg::new();
        let x = g.live_in();
        let y = g.live_in();
        let m = g.add_node(alu(), vec![Operand::LiveIn(x), Operand::LiveIn(y)]);
        let n = g.add_node(
            alu(),
            vec![Operand::Node(m), Operand::LiveIn(x), Operand::Const(7)],
        );
        g.set_live_out(n, true);
        let mut s = NodeSet::new(2);
        s.insert(m);
        s.insert(n);
        let out = collapse(
            &g,
            &[IseUnit {
                nodes: s,
                op: asfu(1),
            }],
        );
        let ise = out.ise_nodes[0];
        assert_eq!(out.dfg.len(), 1);
        assert_eq!(
            out.dfg.node(ise).operands().len(),
            2,
            "x deduped, const dropped"
        );
        assert!(out.dfg.node(ise).is_live_out());
    }

    #[test]
    fn two_ises_and_singletons() {
        // Paper Fig. 4.0.2 final state: ISE{3,5} and ISE{6,7,8} among 9 ops.
        let mut g = SchedDfg::new();
        let li: Vec<_> = (0..4).map(|_| g.live_in()).collect();
        let n1 = g.add_node(alu(), vec![Operand::LiveIn(li[0])]);
        let n2 = g.add_node(alu(), vec![Operand::LiveIn(li[1])]);
        let n3 = g.add_node(alu(), vec![Operand::LiveIn(li[2])]);
        let n4 = g.add_node(alu(), vec![Operand::Node(n1)]);
        let n5 = g.add_node(alu(), vec![Operand::Node(n2), Operand::Node(n3)]);
        let n6 = g.add_node(alu(), vec![Operand::Node(n4)]);
        let n7 = g.add_node(alu(), vec![Operand::Node(n4)]);
        let n8 = g.add_node(alu(), vec![Operand::Node(n6), Operand::Node(n7)]);
        let n9 = g.add_node(alu(), vec![Operand::Node(n5), Operand::LiveIn(li[3])]);
        g.set_live_out(n8, true);
        g.set_live_out(n9, true);
        let mut s35 = NodeSet::new(9);
        s35.insert(n3);
        s35.insert(n5);
        let mut s678 = NodeSet::new(9);
        for n in [n6, n7, n8] {
            s678.insert(n);
        }
        let out = collapse(
            &g,
            &[
                IseUnit {
                    nodes: s35,
                    op: asfu(1),
                },
                IseUnit {
                    nodes: s678,
                    op: asfu(1),
                },
            ],
        );
        assert_eq!(out.dfg.len(), 6); // 1,2,4,9 + two ISEs
        let ise35 = out.ise_nodes[0];
        let ise678 = out.ise_nodes[1];
        assert_eq!(out.dfg.preds(ise35).count(), 1, "feeds from op 2");
        assert_eq!(out.dfg.preds(ise678).count(), 1, "feeds from op 4");
        assert!(out.dfg.node(ise678).is_live_out());
        // Quotient is schedulable 3 cycles on 2-issue like Fig. 4.0.2 step 2.
        use crate::list::{list_schedule, Priority};
        let m = isex_isa::MachineConfig::preset_2issue_6r3w();
        let sch = list_schedule(&out.dfg, &m, Priority::Height);
        assert_eq!(sch.length, 3);
    }

    #[test]
    #[should_panic(expected = "two ISE instances")]
    fn overlapping_sets_panic() {
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(), vec![]);
        let b = g.add_node(alu(), vec![Operand::Node(a)]);
        let mut s1 = NodeSet::new(2);
        s1.insert(a);
        s1.insert(b);
        let mut s2 = NodeSet::new(2);
        s2.insert(b);
        collapse(
            &g,
            &[
                IseUnit {
                    nodes: s1,
                    op: asfu(1),
                },
                IseUnit {
                    nodes: s2,
                    op: asfu(1),
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "not convex")]
    fn nonconvex_set_panics() {
        // a -> b -> c with set {a, c}: quotient has a 2-cycle.
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(), vec![]);
        let b = g.add_node(alu(), vec![Operand::Node(a)]);
        let c = g.add_node(alu(), vec![Operand::Node(b)]);
        let mut s = NodeSet::new(3);
        s.insert(a);
        s.insert(c);
        collapse(
            &g,
            &[IseUnit {
                nodes: s,
                op: asfu(1),
            }],
        );
    }

    #[test]
    fn empty_ise_list_is_identity_modulo_ids() {
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(), vec![]);
        let b = g.add_node(alu(), vec![Operand::Node(a)]);
        let out = collapse(&g, &[]);
        assert_eq!(out.dfg.len(), 2);
        assert_eq!(out.node_map[a.index()].index(), 0);
        assert_eq!(out.node_map[b.index()].index(), 1);
    }
}
