//! The in-order multi-issue list scheduler.
//!
//! §4.3 derives the exploration's scheduling steps "from the idea of list
//! scheduling"; the same scheduler is used stand-alone to evaluate final
//! code (ISE replacement is followed by "schedule the code again to obtain
//! execution time", §5.1).

use isex_dfg::NodeId;
use isex_isa::MachineConfig;

use crate::resources::ResourceTable;
use crate::timing;
use crate::unit::SchedDfg;

/// The scheduling-priority (SP) function used to rank ready operations.
///
/// The paper uses "the number of child operations" as its default SP and
/// names mobility-based priorities as an alternative (§4.3, Ch. 6 future
/// work); all three are provided so the ablation bench can compare them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// Rank by number of child operations (the paper's default).
    #[default]
    ChildCount,
    /// Rank by latency-weighted height (critical-path scheduling).
    Height,
    /// Rank by negated mobility (least-slack-first).
    Mobility,
}

impl Priority {
    /// Computes the static priority value of every node (larger = sooner).
    pub fn values(self, dfg: &SchedDfg) -> Vec<i64> {
        let mut out = Vec::new();
        self.values_into(dfg, &mut out);
        out
    }

    /// Like [`Priority::values`], but writes into `out` (cleared first) so
    /// a caller scheduling many graphs can reuse one allocation.
    pub fn values_into(self, dfg: &SchedDfg, out: &mut Vec<i64>) {
        out.clear();
        match self {
            Priority::ChildCount => {
                out.extend(dfg.node_ids().map(|n| dfg.child_count(n) as i64));
            }
            Priority::Height => {
                // latency-weighted height: cycles from issue to end of chain
                out.resize(dfg.len(), 0);
                for u in (0..dfg.len()).rev() {
                    let uid = NodeId::new(u as u32);
                    let lat = dfg.node(uid).payload().latency as i64;
                    out[u] = lat + dfg.succs(uid).map(|s| out[s.index()]).max().unwrap_or(0);
                }
            }
            Priority::Mobility => {
                out.extend(timing::mobility(dfg).into_iter().map(|m| -(m as i64)));
            }
        }
    }
}

/// The result of scheduling: an issue cycle per node and the makespan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Issue cycle of every node, indexed by node id.
    pub start: Vec<u32>,
    /// Total schedule length in cycles.
    pub length: u32,
}

impl Schedule {
    /// Issue cycle of `id`.
    pub fn start_of(&self, id: NodeId) -> u32 {
        self.start[id.index()]
    }
}

/// Schedules `dfg` on `machine` with the given priority.
///
/// The scheduler is cycle-driven: each cycle it considers the data-ready
/// operations in priority order and issues as many as the machine's issue
/// width, register ports and function units admit.
///
/// # Panics
///
/// Panics if some operation can never be issued (its port demand exceeds
/// the machine even in an empty cycle) — callers must check ISE port
/// demand against `N_in`/`N_out` beforehand, as the exploration constraints
/// of §4.2 do.
///
/// # Example
///
/// ```
/// use isex_dfg::Operand;
/// use isex_isa::MachineConfig;
/// use isex_sched::{list_schedule, Priority, SchedDfg, SchedOp, UnitClass};
///
/// let mut g = SchedDfg::new();
/// let op = SchedOp::new(1, 1, 1, UnitClass::Alu);
/// let a = g.add_node(op, vec![]);
/// let b = g.add_node(op, vec![]);
/// let c = g.add_node(op, vec![Operand::Node(a), Operand::Node(b)]);
/// let m = MachineConfig::preset_2issue_4r2w();
/// let s = list_schedule(&g, &m, Priority::ChildCount);
/// assert_eq!(s.length, 2); // a and b co-issue, then c
/// ```
pub fn list_schedule(dfg: &SchedDfg, machine: &MachineConfig, priority: Priority) -> Schedule {
    let mut scratch = ListScratch::new();
    let length = schedule_into(dfg, machine, priority, &mut scratch);
    Schedule {
        start: std::mem::take(&mut scratch.start),
        length,
    }
}

/// [`list_schedule`] for callers that only need the makespan, reusing the
/// buffers in `scratch` so the hot loop (one schedule per candidate
/// evaluation) allocates nothing.
pub fn list_schedule_len(
    dfg: &SchedDfg,
    machine: &MachineConfig,
    priority: Priority,
    scratch: &mut ListScratch,
) -> u32 {
    schedule_into(dfg, machine, priority, scratch)
}

/// Reusable buffers for the list scheduler: issue cycles, scheduled flags,
/// priorities, the per-cycle ready list and the resource table.
///
/// One `ListScratch` serves any sequence of `(dfg, machine)` pairs — every
/// buffer is cleared (not reallocated) at the start of each schedule.
#[derive(Debug, Default)]
pub struct ListScratch {
    start: Vec<u32>,
    scheduled: Vec<bool>,
    prio: Vec<i64>,
    ready: Vec<NodeId>,
    resources: Option<ResourceTable>,
}

impl ListScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The scheduler core: fills `scratch.start` and returns the makespan.
fn schedule_into(
    dfg: &SchedDfg,
    machine: &MachineConfig,
    priority: Priority,
    scratch: &mut ListScratch,
) -> u32 {
    // One thread-local read when no tracer is attached — the scheduler is
    // called per candidate evaluation, so this must stay near-free.
    let _span = isex_trace::span_with("sched.list", || vec![("ops", dfg.len().to_string())]);
    let k = dfg.len();
    let ListScratch {
        start,
        scheduled,
        prio,
        ready,
        resources,
    } = scratch;
    start.clear();
    start.resize(k, 0);
    scheduled.clear();
    scheduled.resize(k, false);
    priority.values_into(dfg, prio);
    let resources = resources.get_or_insert_with(|| ResourceTable::new(*machine));
    resources.reset(*machine);
    let mut remaining = k;
    let mut cycle: u32 = 0;

    // Pre-check impossibility so the loop below cannot spin forever.
    for (id, node) in dfg.iter() {
        let op = node.payload();
        assert!(
            op.reads <= machine.read_ports && op.writes <= machine.write_ports,
            "operation {id:?} demands {}R/{}W, machine has {}R/{}W",
            op.reads,
            op.writes,
            machine.read_ports,
            machine.write_ports
        );
    }

    while remaining > 0 {
        // Data-ready: all predecessors issued and completed by `cycle`.
        ready.clear();
        ready.extend(dfg.node_ids().filter(|&n| {
            !scheduled[n.index()]
                && dfg.preds(n).all(|p| {
                    scheduled[p.index()]
                        && start[p.index()] + dfg.node(p).payload().latency <= cycle
                })
        }));
        // Priority order; node id breaks ties deterministically.
        ready.sort_by_key(|&n| (-prio[n.index()], n.index()));
        for &n in ready.iter() {
            let op = dfg.node(n).payload();
            if resources.can_issue(cycle, op) {
                resources.commit(cycle, op);
                start[n.index()] = cycle;
                scheduled[n.index()] = true;
                remaining -= 1;
            }
        }
        cycle += 1;
    }

    dfg.iter()
        .map(|(id, n)| start[id.index()] + n.payload().latency)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{SchedOp, UnitClass};
    use isex_dfg::Operand;

    fn alu(reads: usize) -> SchedOp {
        SchedOp::new(1, reads, 1, UnitClass::Alu)
    }

    #[test]
    fn respects_dependences() {
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(0), vec![]);
        let b = g.add_node(
            SchedOp::new(3, 1, 1, UnitClass::Alu),
            vec![Operand::Node(a)],
        );
        let c = g.add_node(alu(1), vec![Operand::Node(b)]);
        let m = MachineConfig::preset_4issue_10r5w();
        let s = list_schedule(&g, &m, Priority::Height);
        assert_eq!(s.start_of(a), 0);
        assert_eq!(s.start_of(b), 1);
        assert_eq!(s.start_of(c), 4, "b has latency 3");
        assert_eq!(s.length, 5);
    }

    #[test]
    fn respects_issue_width() {
        // 4 independent ops on a 2-issue machine: 2 cycles.
        let mut g = SchedDfg::new();
        for _ in 0..4 {
            g.add_node(alu(1), vec![]);
        }
        let m = MachineConfig::preset_2issue_6r3w();
        let s = list_schedule(&g, &m, Priority::ChildCount);
        assert_eq!(s.length, 2);
    }

    #[test]
    fn respects_read_ports() {
        // 2 ops needing 2 reads each on a 4-issue machine with 3 read
        // ports: cannot co-issue.
        let mut g = SchedDfg::new();
        g.add_node(alu(2), vec![]);
        g.add_node(alu(2), vec![]);
        let m = MachineConfig::new(4, 3, 4);
        let s = list_schedule(&g, &m, Priority::ChildCount);
        assert_eq!(s.length, 2);
    }

    #[test]
    fn paper_fig_1_3_1_shape() {
        // The intro's point: a 4-deep dependence chain stays 4 cycles even
        // with infinite width, while independent ops fold into fewer cycles.
        let mut g = SchedDfg::new();
        let mut prev = g.add_node(alu(0), vec![]);
        for _ in 0..3 {
            prev = g.add_node(alu(1), vec![Operand::Node(prev)]);
        }
        for _ in 0..4 {
            g.add_node(alu(0), vec![]);
        }
        let wide = MachineConfig::new(8, 32, 16);
        let s = list_schedule(&g, &wide, Priority::Height);
        assert_eq!(s.length, 4, "dependence chain bounds the schedule");
        let narrow = MachineConfig::new(1, 4, 2);
        let s1 = list_schedule(&g, &narrow, Priority::Height);
        assert_eq!(s1.length, 8, "single-issue executes all 8 ops serially");
    }

    #[test]
    fn asfu_and_alu_coissue() {
        let mut g = SchedDfg::new();
        g.add_node(SchedOp::new(1, 4, 2, UnitClass::Asfu), vec![]);
        g.add_node(alu(1), vec![]);
        let m = MachineConfig::preset_2issue_6r3w();
        let s = list_schedule(&g, &m, Priority::ChildCount);
        assert_eq!(s.length, 1, "ISE and a normal op issue together");
    }

    #[test]
    fn schedule_never_beats_dep_length() {
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(0), vec![]);
        let b = g.add_node(alu(1), vec![Operand::Node(a)]);
        let _ = g.add_node(alu(1), vec![Operand::Node(b)]);
        let m = MachineConfig::preset_4issue_10r5w();
        let s = list_schedule(&g, &m, Priority::Mobility);
        assert!(s.length >= timing::dep_length(&g));
        assert_eq!(s.length, 3);
    }

    #[test]
    #[should_panic(expected = "demands")]
    fn impossible_demand_panics() {
        let mut g = SchedDfg::new();
        g.add_node(SchedOp::new(1, 9, 1, UnitClass::Asfu), vec![]);
        let m = MachineConfig::preset_2issue_4r2w();
        list_schedule(&g, &m, Priority::ChildCount);
    }

    #[test]
    fn blocking_asfu_serialises_independent_ises() {
        // Two independent 3-cycle ISEs: pipelined ASFU issues them in
        // consecutive cycles; a blocking ASFU forces a 3-cycle gap.
        let ise = SchedOp::new(3, 2, 1, UnitClass::Asfu);
        let mut g = SchedDfg::new();
        g.add_node(ise, vec![]);
        g.add_node(ise, vec![]);
        let pipelined = MachineConfig::preset_4issue_10r5w();
        let s = list_schedule(&g, &pipelined, Priority::Height);
        assert_eq!(s.length, 4, "issue at cycles 0 and 1");
        let mut blocking = pipelined;
        blocking.asfu_pipelined = false;
        let s = list_schedule(&g, &blocking, Priority::Height);
        assert_eq!(s.length, 6, "issue at cycles 0 and 3");
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let g = SchedDfg::new();
        let m = MachineConfig::default();
        let s = list_schedule(&g, &m, Priority::ChildCount);
        assert_eq!(s.length, 0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_schedules() {
        // The same scratch across graphs of different sizes and machines
        // must reproduce what a fresh list_schedule computes.
        let mut scratch = ListScratch::new();
        let mut big = SchedDfg::new();
        let mut prev = big.add_node(alu(0), vec![]);
        for _ in 0..6 {
            prev = big.add_node(alu(1), vec![Operand::Node(prev)]);
        }
        let mut small = SchedDfg::new();
        small.add_node(alu(0), vec![]);
        small.add_node(alu(0), vec![]);
        for (g, m) in [
            (&big, MachineConfig::preset_2issue_4r2w()),
            (&small, MachineConfig::new(1, 4, 2)),
            (&big, MachineConfig::preset_4issue_10r5w()),
        ] {
            for p in [Priority::ChildCount, Priority::Height, Priority::Mobility] {
                let fresh = list_schedule(g, &m, p);
                let reused = list_schedule_len(g, &m, p, &mut scratch);
                assert_eq!(reused, fresh.length, "{p:?}");
            }
        }
    }

    #[test]
    fn priorities_yield_valid_schedules() {
        // Same graph under all three priorities: all valid, maybe
        // different, none shorter than the dependence bound.
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(0), vec![]);
        let b = g.add_node(alu(1), vec![Operand::Node(a)]);
        let c = g.add_node(alu(1), vec![Operand::Node(a)]);
        let _d = g.add_node(alu(2), vec![Operand::Node(b), Operand::Node(c)]);
        for p in [Priority::ChildCount, Priority::Height, Priority::Mobility] {
            let m = MachineConfig::preset_2issue_4r2w();
            let s = list_schedule(&g, &m, p);
            assert!(s.length >= timing::dep_length(&g));
            // dependences hold
            for (id, _) in g.iter() {
                for pr in g.preds(id) {
                    assert!(
                        s.start_of(pr) + g.node(pr).payload().latency <= s.start_of(id),
                        "{p:?}: dep violated"
                    );
                }
            }
        }
    }
}
