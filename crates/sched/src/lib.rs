//! Multi-issue list scheduler and timing analysis for ISE exploration.
//!
//! The paper's key argument (§1.4) is that ISE exploration for a
//! multiple-issue processor must *embed instruction scheduling*: only
//! operations on the critical path are worth packing, and the critical path
//! moves after each new ISE. This crate provides the machinery:
//!
//! * a schedulable program form ([`SchedDfg`] = `Dfg<SchedOp>`) and the
//!   lowering from the ISA-level [`ProgramDfg`](isex_isa::ProgramDfg)
//!   ([`unit::lower`]);
//! * a per-cycle resource model — issue slots, register-file read/write
//!   ports, multiplier and memory units ([`resources`]);
//! * an in-order list scheduler with pluggable priority
//!   ([`list::list_schedule`], [`Priority`]);
//! * dependence-only timing: ASAP/ALAP, mobility, critical-path membership
//!   and the `Max_AEC` slack window of the merit function ([`timing`]);
//! * collapsing of chosen ISE subgraphs into single schedulable units
//!   ([`collapse`]).
//!
//! # Example
//!
//! ```
//! use isex_isa::{MachineConfig, Opcode, Operation, ProgramDfg};
//! use isex_dfg::Operand;
//! use isex_sched::{list_schedule, unit, Priority};
//!
//! let mut dfg = ProgramDfg::new();
//! let x = dfg.live_in();
//! let a = dfg.add_node(Operation::new(Opcode::Add), vec![Operand::LiveIn(x), Operand::Const(1)]);
//! let b = dfg.add_node(Operation::new(Opcode::Sll), vec![Operand::Node(a), Operand::Const(2)]);
//! dfg.set_live_out(b, true);
//!
//! let sched_dfg = unit::lower(&dfg);
//! let m = MachineConfig::preset_2issue_4r2w();
//! let sched = list_schedule(&sched_dfg, &m, Priority::ChildCount);
//! assert_eq!(sched.length, 2); // a then b: pure dependence chain
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapse;
pub mod display;
pub mod list;
pub mod resources;
pub mod soa;
pub mod timing;
pub mod unit;

pub use list::{list_schedule, list_schedule_len, ListScratch, Priority, Schedule};
pub use unit::{SchedDfg, SchedOp, UnitClass};
