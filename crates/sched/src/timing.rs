//! Dependence-only timing analysis: ASAP/ALAP, mobility, critical path and
//! the merit function's `Max_AEC` slack window.
//!
//! These analyses ignore resource limits and consider only data dependences
//! and latencies; they answer "which operations determine the execution
//! time" (§4.0 step 1) and "how much may a non-critical subgraph slip
//! without hurting the schedule" (§4.3 criterion (3)).
//!
//! # Topological-order invariant
//!
//! Every pass in this module visits nodes in index order (forward for ASAP,
//! reverse for ALAP) and assumes that order is topological: every operand
//! of a node has a smaller index than the node itself. [`SchedDfg`] graphs
//! built through [`isex_dfg::Dfg::add_node`] satisfy this by construction,
//! but a graph deserialized from an external payload may not — the passes
//! would then read a predecessor's start time before it is written and
//! return wrong (not panicking) timings. Debug builds assert the invariant
//! on every edge; release builds trust the constructor.

use isex_dfg::{NodeId, NodeSet};

use crate::unit::SchedDfg;

/// Earliest possible start cycle of every node (resources ignored).
pub fn asap(dfg: &SchedDfg) -> Vec<u32> {
    let mut start = vec![0u32; dfg.len()];
    for (id, _) in dfg.iter() {
        let s = dfg
            .preds(id)
            .map(|p| {
                debug_assert!(
                    p.index() < id.index(),
                    "asap: node {} reads node {} — index order is not topological",
                    id.index(),
                    p.index()
                );
                start[p.index()] + dfg.node(p).payload().latency
            })
            .max()
            .unwrap_or(0);
        start[id.index()] = s;
    }
    start
}

/// The dependence-only schedule length: the latency-weighted critical-path
/// length in cycles. A lower bound on any machine's schedule length.
pub fn dep_length(dfg: &SchedDfg) -> u32 {
    length_from_asap(dfg, &asap(dfg))
}

/// Latest possible start cycle of every node such that everything finishes
/// by `deadline` cycles (resources ignored).
///
/// # Panics
///
/// Panics if `deadline` is smaller than the dependence-only length — no
/// valid ALAP exists then.
pub fn alap(dfg: &SchedDfg, deadline: u32) -> Vec<u32> {
    alap_from_asap(dfg, &asap(dfg), deadline)
}

/// [`alap`] against a precomputed [`asap`] vector, so callers that already
/// ran the forward pass (every mobility or shared-timing computation)
/// validate the deadline without paying for a second ASAP sweep.
///
/// # Panics
///
/// Panics if `deadline` is smaller than the dependence-only length implied
/// by `asap` — no valid ALAP exists then.
pub fn alap_from_asap(dfg: &SchedDfg, asap: &[u32], deadline: u32) -> Vec<u32> {
    let len = length_from_asap(dfg, asap);
    assert!(
        deadline >= len,
        "deadline {deadline} below dependence-only length {len}"
    );
    let mut start = vec![0u32; dfg.len()];
    for u in (0..dfg.len()).rev() {
        let uid = NodeId::new(u as u32);
        let lat = dfg.node(uid).payload().latency;
        let s = dfg
            .succs(uid)
            .map(|s| {
                debug_assert!(
                    s.index() > u,
                    "alap: node {u} feeds node {} — index order is not topological",
                    s.index()
                );
                start[s.index()]
            })
            .min()
            .map(|earliest_succ| earliest_succ - lat)
            .unwrap_or(deadline - lat);
        start[u] = s;
    }
    start
}

/// Schedule length implied by an ASAP vector.
pub fn length_from_asap(dfg: &SchedDfg, asap: &[u32]) -> u32 {
    dfg.iter()
        .map(|(id, n)| asap[id.index()] + n.payload().latency)
        .max()
        .unwrap_or(0)
}

/// Mobility (slack) of every node against the dependence-only length:
/// `alap − asap`. Zero mobility means the node is on a critical path.
pub fn mobility(dfg: &SchedDfg) -> Vec<u32> {
    let a = asap(dfg);
    let len = length_from_asap(dfg, &a);
    let l = alap_from_asap(dfg, &a, len);
    a.iter().zip(&l).map(|(a, l)| l - a).collect()
}

/// The set of nodes on a latency-weighted critical path (mobility zero).
///
/// # Example
///
/// ```
/// use isex_dfg::Operand;
/// use isex_sched::{SchedDfg, SchedOp, UnitClass};
/// use isex_sched::timing::critical_nodes;
///
/// let mut g = SchedDfg::new();
/// let alu = |l| SchedOp::new(l, 1, 1, UnitClass::Alu);
/// let a = g.add_node(alu(1), vec![]);
/// let b = g.add_node(alu(2), vec![Operand::Node(a)]);
/// let c = g.add_node(alu(1), vec![Operand::Node(a)]); // slack 1
/// let d = g.add_node(alu(1), vec![Operand::Node(b), Operand::Node(c)]);
/// let crit = critical_nodes(&g);
/// assert!(crit.contains(a) && crit.contains(b) && crit.contains(d));
/// assert!(!crit.contains(c));
/// ```
pub fn critical_nodes(dfg: &SchedDfg) -> NodeSet {
    let mut set = NodeSet::new(dfg.len());
    for (i, m) in mobility(dfg).iter().enumerate() {
        if *m == 0 {
            set.insert(NodeId::new(i as u32));
        }
    }
    set
}

/// The maximal allowable execution cycles of a subgraph (§4.3, Fig. 4.3.8):
/// the window between the earliest cycle any member of `set` could start
/// and the latest cycle any member could finish without stretching the
/// schedule beyond `deadline`.
///
/// If the subgraph (as an ISE) executes in at most `Max_AEC` cycles, "there
/// does not have any performance loss".
///
/// Returns 0 for an empty set.
pub fn max_aec(dfg: &SchedDfg, set: &NodeSet, deadline: u32) -> u32 {
    if set.is_empty() {
        return 0;
    }
    let a = asap(dfg);
    let l = alap_from_asap(dfg, &a, deadline);
    max_aec_from(dfg, &a, &l, set)
}

/// [`max_aec`] against precomputed [`asap`]/[`alap`] vectors of `dfg`, so
/// one timing analysis can serve many subgraph queries at the same
/// deadline (the merit function asks once per operation per iteration).
pub fn max_aec_from(dfg: &SchedDfg, asap: &[u32], alap: &[u32], set: &NodeSet) -> u32 {
    if set.is_empty() {
        return 0;
    }
    let earliest_start = set.iter().map(|n| asap[n.index()]).min().unwrap_or(0);
    let latest_finish = set
        .iter()
        .map(|n| alap[n.index()] + dfg.node(n).payload().latency)
        .max()
        .unwrap_or(0);
    latest_finish.saturating_sub(earliest_start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{SchedOp, UnitClass};
    use isex_dfg::Operand;

    fn alu(lat: u32) -> SchedOp {
        SchedOp::new(lat, 1, 1, UnitClass::Alu)
    }

    /// a(1) -> b(2) -> d(1);  a -> c(1) -> d
    fn sample() -> (SchedDfg, [NodeId; 4]) {
        let mut g = SchedDfg::new();
        let a = g.add_node(alu(1), vec![]);
        let b = g.add_node(alu(2), vec![Operand::Node(a)]);
        let c = g.add_node(alu(1), vec![Operand::Node(a)]);
        let d = g.add_node(alu(1), vec![Operand::Node(b), Operand::Node(c)]);
        (g, [a, b, c, d])
    }

    #[test]
    fn asap_and_length() {
        let (g, [a, b, c, d]) = sample();
        let s = asap(&g);
        assert_eq!(s[a.index()], 0);
        assert_eq!(s[b.index()], 1);
        assert_eq!(s[c.index()], 1);
        assert_eq!(s[d.index()], 3);
        assert_eq!(length_from_asap(&g, &s), 4);
    }

    #[test]
    fn alap_pushes_slack_late() {
        let (g, [a, b, c, d]) = sample();
        let l = alap(&g, 4);
        assert_eq!(l[a.index()], 0);
        assert_eq!(l[b.index()], 1);
        assert_eq!(l[c.index()], 2, "c can slip one cycle");
        assert_eq!(l[d.index()], 3);
    }

    #[test]
    fn mobility_and_critical() {
        let (g, [a, b, c, d]) = sample();
        let m = mobility(&g);
        assert_eq!(m[a.index()], 0);
        assert_eq!(m[b.index()], 0);
        assert_eq!(m[c.index()], 1);
        assert_eq!(m[d.index()], 0);
        let crit = critical_nodes(&g);
        assert_eq!(crit.len(), 3);
        assert!(!crit.contains(c));
    }

    #[test]
    fn alap_with_extended_deadline() {
        let (g, [a, ..]) = sample();
        let l = alap(&g, 6);
        assert_eq!(l[a.index()], 2, "everything slips by the extra slack");
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn alap_below_length_panics() {
        let (g, _) = sample();
        alap(&g, 3);
    }

    #[test]
    fn alap_from_asap_matches_alap() {
        let (g, _) = sample();
        let a = asap(&g);
        assert_eq!(alap_from_asap(&g, &a, 4), alap(&g, 4));
        assert_eq!(alap_from_asap(&g, &a, 7), alap(&g, 7));
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn alap_from_asap_validates_deadline() {
        let (g, _) = sample();
        let a = asap(&g);
        alap_from_asap(&g, &a, 3);
    }

    /// Regression: `asap`/`alap` assume index order is topological.
    /// `Dfg::add_node` guarantees it, but serde deserialization bypasses
    /// the constructor — a payload with a forward reference used to yield
    /// silently wrong timings. Debug builds now assert on the bad edge.
    #[cfg(debug_assertions)]
    #[test]
    fn non_topological_order_is_caught_in_debug() {
        // Node 0 reads node 1: a forward reference no `add_node` call can
        // produce, but a stale/hostile serialized graph can.
        let json = r#"{
            "nodes": [
                {"payload": {"latency": 1, "reads": 1, "writes": 1, "class": "Alu"},
                 "operands": [{"Node": 1}], "live_out": false},
                {"payload": {"latency": 1, "reads": 1, "writes": 1, "class": "Alu"},
                 "operands": [], "live_out": true}
            ],
            "succs": [[], [0]],
            "live_ins": 0
        }"#;
        let g: SchedDfg = serde_json::from_str(json).expect("payload parses");
        let fwd = std::panic::catch_unwind(|| asap(&g));
        assert!(fwd.is_err(), "asap must reject a non-topological order");
        let bwd = std::panic::catch_unwind(|| alap_from_asap(&g, &[0, 0], 2));
        assert!(bwd.is_err(), "alap must reject a non-topological order");
    }

    #[test]
    fn max_aec_on_critical_chain_equals_its_span() {
        let (g, [a, b, _, d]) = sample();
        let mut s = NodeSet::new(4);
        s.insert(a);
        s.insert(b);
        s.insert(d);
        // Critical chain occupies the whole schedule: window = deadline.
        assert_eq!(max_aec(&g, &s, 4), 4);
    }

    #[test]
    fn max_aec_of_slack_node_includes_slack() {
        let (g, [_, _, c, _]) = sample();
        let mut s = NodeSet::new(4);
        s.insert(c);
        // c may start at 1 and finish by 3 (alap 2 + lat 1): window 2.
        assert_eq!(max_aec(&g, &s, 4), 2);
        // With a relaxed deadline the window grows.
        assert_eq!(max_aec(&g, &s, 6), 4);
    }

    #[test]
    fn max_aec_empty_set_is_zero() {
        let (g, _) = sample();
        assert_eq!(max_aec(&g, &NodeSet::new(4), 4), 0);
    }

    #[test]
    fn empty_graph() {
        let g = SchedDfg::new();
        assert!(asap(&g).is_empty());
        assert_eq!(length_from_asap(&g, &[]), 0);
        assert!(critical_nodes(&g).is_empty());
    }
}
