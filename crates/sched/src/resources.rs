//! Per-cycle resource accounting.
//!
//! The scheduler tracks, for every cycle, how much of each machine resource
//! is already committed: issue slots, register-file read and write ports,
//! multiplier units and memory ports (the constraints enumerated in §4.3's
//! Operation-Scheduling: "issue width, number of function units and number
//! of register read/write ports").

use isex_isa::MachineConfig;

use crate::unit::{SchedOp, UnitClass};

/// Resource usage of one cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleUsage {
    /// Instructions issued this cycle.
    pub issued: usize,
    /// Register read ports in use.
    pub reads: usize,
    /// Register write ports in use.
    pub writes: usize,
    /// Multiplier units in use.
    pub mults: usize,
    /// Memory ports in use.
    pub mems: usize,
    /// Whether the single ASFU issue slot of this cycle is taken.
    pub asfu: bool,
}

/// A growable table of per-cycle usage with admission checks against a
/// [`MachineConfig`].
///
/// # Example
///
/// ```
/// use isex_isa::MachineConfig;
/// use isex_sched::resources::ResourceTable;
/// use isex_sched::{SchedOp, UnitClass};
///
/// let m = MachineConfig::preset_2issue_4r2w();
/// let mut rt = ResourceTable::new(m);
/// let op = SchedOp::new(1, 2, 1, UnitClass::Alu);
/// assert!(rt.can_issue(0, &op));
/// rt.commit(0, &op);
/// rt.commit(0, &op);
/// assert!(!rt.can_issue(0, &op), "issue width exhausted");
/// assert!(rt.can_issue(1, &op));
/// ```
#[derive(Clone, Debug)]
pub struct ResourceTable {
    machine: MachineConfig,
    cycles: Vec<CycleUsage>,
}

impl ResourceTable {
    /// Creates an empty table for the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        ResourceTable {
            machine,
            cycles: Vec::new(),
        }
    }

    /// The machine this table admits against.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Empties the table for a new schedule on `machine`, keeping the
    /// allocated cycle storage. `usage` treats missing cycles as all-zero,
    /// so a reset table is indistinguishable from a fresh one.
    pub fn reset(&mut self, machine: MachineConfig) {
        self.machine = machine;
        self.cycles.clear();
    }

    /// Usage of `cycle` (all-zero if nothing was committed there yet).
    pub fn usage(&self, cycle: u32) -> CycleUsage {
        self.cycles.get(cycle as usize).copied().unwrap_or_default()
    }

    /// Returns `true` if `op` can be issued in `cycle` without violating
    /// any machine limit. On a non-pipelined ASFU
    /// ([`MachineConfig::asfu_pipelined`] = `false`) an ISE also requires
    /// the unit to be free for its whole latency.
    pub fn can_issue(&self, cycle: u32, op: &SchedOp) -> bool {
        let u = self.usage(cycle);
        let m = &self.machine;
        if u.issued + 1 > m.issue_width
            || u.reads + op.reads > m.read_ports
            || u.writes + op.writes > m.write_ports
        {
            return false;
        }
        match op.class {
            UnitClass::Mult => u.mults < m.mult_units,
            UnitClass::Mem => u.mems < m.mem_ports,
            UnitClass::Asfu => {
                let span = if m.asfu_pipelined { 1 } else { op.latency };
                (0..span).all(|off| !self.usage(cycle + off).asfu)
            }
            UnitClass::Alu | UnitClass::Branch => true,
        }
    }

    /// Commits `op` to `cycle`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the issue violates a limit; call
    /// [`ResourceTable::can_issue`] first.
    pub fn commit(&mut self, cycle: u32, op: &SchedOp) {
        debug_assert!(
            self.can_issue(cycle, op),
            "resource over-commit at cycle {cycle}"
        );
        if self.cycles.len() <= cycle as usize {
            self.cycles
                .resize(cycle as usize + 1, CycleUsage::default());
        }
        let u = &mut self.cycles[cycle as usize];
        u.issued += 1;
        u.reads += op.reads;
        u.writes += op.writes;
        match op.class {
            UnitClass::Mult => u.mults += 1,
            UnitClass::Mem => u.mems += 1,
            UnitClass::Asfu => self.set_asfu_busy(cycle, op.latency, true),
            UnitClass::Alu | UnitClass::Branch => {}
        }
    }

    /// Marks the ASFU slot(s) of an ISE issued at `cycle`.
    fn set_asfu_busy(&mut self, cycle: u32, latency: u32, busy: bool) {
        let span = if self.machine.asfu_pipelined {
            1
        } else {
            latency
        };
        let end = (cycle + span) as usize;
        if self.cycles.len() < end {
            self.cycles.resize(end, CycleUsage::default());
        }
        for off in 0..span {
            self.cycles[(cycle + off) as usize].asfu = busy;
        }
    }

    /// Releases a previously committed instruction from `cycle` (the exact
    /// inverse of [`ResourceTable::commit`]). Used when an open ISE group
    /// slides to a later issue slot so a new member can pack with it
    /// (Fig. 4.3.4's `CTS++` loop).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if nothing matching was committed there.
    pub fn uncommit(&mut self, cycle: u32, op: &SchedOp) {
        let u = &mut self.cycles[cycle as usize];
        debug_assert!(
            u.issued >= 1 && u.reads >= op.reads && u.writes >= op.writes,
            "uncommit without matching commit at cycle {cycle}"
        );
        u.issued -= 1;
        u.reads -= op.reads;
        u.writes -= op.writes;
        match op.class {
            UnitClass::Mult => u.mults -= 1,
            UnitClass::Mem => u.mems -= 1,
            UnitClass::Asfu => self.set_asfu_busy(cycle, op.latency, false),
            UnitClass::Alu | UnitClass::Branch => {}
        }
    }

    /// Adjusts the read/write-port usage of `cycle` by signed deltas,
    /// without consuming an issue slot. Used when an already-issued ISE
    /// group grows: its `IN(S)`/`OUT(S)` demand changes in place.
    ///
    /// Negative deltas always succeed; positive deltas succeed only if the
    /// cycle still has the ports, in which case they are committed.
    /// Returns `true` on success; on failure nothing changes.
    pub fn try_adjust_ports(&mut self, cycle: u32, d_reads: i64, d_writes: i64) -> bool {
        if self.cycles.len() <= cycle as usize {
            self.cycles
                .resize(cycle as usize + 1, CycleUsage::default());
        }
        let m = (self.machine.read_ports, self.machine.write_ports);
        let u = &mut self.cycles[cycle as usize];
        let nr = u.reads as i64 + d_reads;
        let nw = u.writes as i64 + d_writes;
        if nr < 0 || nw < 0 {
            // Callers never release more than they committed; clamp defensively.
            u.reads = nr.max(0) as usize;
            u.writes = nw.max(0) as usize;
            return true;
        }
        if nr as usize > m.0 || nw as usize > m.1 {
            return false;
        }
        u.reads = nr as usize;
        u.writes = nw as usize;
        true
    }

    /// First cycle `>= from` in which `op` fits.
    ///
    /// Always terminates: an untouched future cycle admits any single
    /// instruction whose port demand fits an empty cycle; if `op`'s demand
    /// exceeds even an empty cycle (e.g. an ISE with more inputs than the
    /// register file has read ports), `None` is returned.
    pub fn earliest_fit(&self, from: u32, op: &SchedOp) -> Option<u32> {
        // An op that does not fit an empty cycle never fits.
        let m = &self.machine;
        if op.reads > m.read_ports || op.writes > m.write_ports {
            return None;
        }
        let mut c = from;
        loop {
            if self.can_issue(c, op) {
                return Some(c);
            }
            c += 1;
            if c as usize > self.cycles.len() + 1 {
                // Past the occupied horizon every cycle is empty; fits.
                return Some(c);
            }
        }
    }

    /// Number of cycles with at least one committed instruction slot
    /// (the occupied horizon).
    pub fn horizon(&self) -> u32 {
        self.cycles.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(reads: usize, writes: usize) -> SchedOp {
        SchedOp::new(1, reads, writes, UnitClass::Alu)
    }

    #[test]
    fn read_port_limit_enforced() {
        let m = MachineConfig::preset_2issue_4r2w();
        let mut rt = ResourceTable::new(m);
        rt.commit(0, &alu(2, 1));
        assert!(rt.can_issue(0, &alu(2, 1)));
        rt.commit(0, &alu(2, 1));
        // Issue width now full (2/2).
        assert!(!rt.can_issue(0, &alu(0, 0)));
    }

    #[test]
    fn write_port_limit_enforced() {
        let m = MachineConfig::new(4, 8, 1);
        let mut rt = ResourceTable::new(m);
        rt.commit(0, &alu(1, 1));
        assert!(!rt.can_issue(0, &alu(1, 1)), "single write port consumed");
        assert!(rt.can_issue(0, &alu(1, 0)), "write-free op still fits");
    }

    #[test]
    fn asfu_slot_is_exclusive() {
        let m = MachineConfig::preset_4issue_10r5w();
        let mut rt = ResourceTable::new(m);
        let ise = SchedOp::new(2, 4, 2, UnitClass::Asfu);
        rt.commit(0, &ise);
        assert!(!rt.can_issue(0, &ise), "one ISE per cycle");
        assert!(rt.can_issue(0, &alu(1, 1)), "normal ops may co-issue");
        assert!(rt.can_issue(1, &ise));
    }

    #[test]
    fn mult_and_mem_units() {
        let mut m = MachineConfig::preset_2issue_6r3w();
        m.mult_units = 1;
        m.mem_ports = 1;
        let mut rt = ResourceTable::new(m);
        let mul = SchedOp::new(1, 2, 1, UnitClass::Mult);
        let ld = SchedOp::new(1, 1, 1, UnitClass::Mem);
        rt.commit(0, &mul);
        assert!(!rt.can_issue(0, &mul));
        rt.commit(0, &ld);
        assert!(
            !rt.can_issue(1, &SchedOp::new(1, 7, 1, UnitClass::Alu)),
            "reads beyond ports never fit"
        );
    }

    #[test]
    fn earliest_fit_skips_full_cycles() {
        let m = MachineConfig::new(1, 4, 2);
        let mut rt = ResourceTable::new(m);
        rt.commit(0, &alu(1, 1));
        rt.commit(1, &alu(1, 1));
        assert_eq!(rt.earliest_fit(0, &alu(1, 1)), Some(2));
        assert_eq!(rt.earliest_fit(5, &alu(1, 1)), Some(5));
    }

    #[test]
    fn non_pipelined_asfu_blocks_overlapping_ises() {
        let mut m = MachineConfig::preset_4issue_10r5w();
        m.asfu_pipelined = false;
        let mut rt = ResourceTable::new(m);
        let long_ise = SchedOp::new(3, 2, 1, UnitClass::Asfu);
        rt.commit(0, &long_ise);
        // Busy for cycles 0..3: nothing ASFU fits there.
        let short_ise = SchedOp::new(1, 2, 1, UnitClass::Asfu);
        assert!(!rt.can_issue(1, &short_ise));
        assert!(!rt.can_issue(2, &short_ise));
        assert_eq!(rt.earliest_fit(0, &short_ise), Some(3));
        // Normal ops still co-issue during the occupancy window.
        assert!(rt.can_issue(1, &alu(1, 1)));
        // Uncommit releases the whole window.
        rt.uncommit(0, &long_ise);
        assert!(rt.can_issue(1, &short_ise));
    }

    #[test]
    fn pipelined_asfu_accepts_back_to_back_ises() {
        let m = MachineConfig::preset_4issue_10r5w();
        assert!(m.asfu_pipelined);
        let mut rt = ResourceTable::new(m);
        let ise = SchedOp::new(3, 2, 1, UnitClass::Asfu);
        rt.commit(0, &ise);
        assert!(rt.can_issue(1, &ise), "pipelined: new ISE every cycle");
    }

    #[test]
    fn adjust_ports_grows_and_shrinks() {
        let m = MachineConfig::preset_2issue_4r2w();
        let mut rt = ResourceTable::new(m);
        rt.commit(0, &alu(2, 1));
        assert!(rt.try_adjust_ports(0, 2, 1), "grow to 4R/2W fits exactly");
        assert!(!rt.try_adjust_ports(0, 1, 0), "5th read port refused");
        assert_eq!(rt.usage(0).reads, 4, "failed adjust left state intact");
        assert!(rt.try_adjust_ports(0, -3, -1));
        assert_eq!(rt.usage(0).reads, 1);
        assert_eq!(rt.usage(0).writes, 1);
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let m = MachineConfig::preset_2issue_4r2w();
        let mut rt = ResourceTable::new(m);
        rt.commit(0, &alu(2, 1));
        rt.commit(3, &alu(1, 1));
        rt.reset(m);
        assert_eq!(rt.usage(0), CycleUsage::default());
        assert_eq!(rt.usage(3), CycleUsage::default());
        assert_eq!(rt.horizon(), 0);
        let wider = MachineConfig::preset_4issue_10r5w();
        rt.reset(wider);
        assert_eq!(rt.machine(), &wider);
    }

    #[test]
    fn earliest_fit_rejects_impossible_demand() {
        let m = MachineConfig::preset_2issue_4r2w();
        let rt = ResourceTable::new(m);
        let monster = SchedOp::new(1, 5, 1, UnitClass::Asfu);
        assert_eq!(rt.earliest_fit(0, &monster), None);
    }
}
