//! Property tests of the incremental timing kernels: on arbitrary DAGs,
//! arbitrary latency patches and arbitrary (convex, disjoint) ISE groups,
//! the cone-limited incremental ASAP/ALAP/height passes must equal full
//! recomputation over the patched quotient, and the walk-deadline handling
//! must obey the uniform-shift lemma the merit path relies on.

use isex_dfg::{NodeId, NodeSet, Operand};
use isex_sched::soa::{
    alap_incremental_into, alap_into, asap_incremental_into, asap_into, collapse_soa,
    height_incremental_into, height_into, length_from_asap, BaseTiming, Quotient, QuotientScratch,
    SoaGraph,
};
use isex_sched::{SchedDfg, SchedOp, UnitClass};
use proptest::prelude::*;

/// One node: latency, predecessor pick mask over earlier nodes, live-out.
type NodeSpec = (u32, u64, bool);

fn arb_dag() -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec((1u32..4, any::<u64>(), any::<bool>()), 2..40)
}

/// Per-node replacement latencies (`None` keeps the base latency) — the
/// shape of a walk's software-option patch.
fn arb_patch() -> impl Strategy<Value = Vec<Option<u32>>> {
    prop::collection::vec(prop::option::of(1u32..6), 0..40)
}

/// Interval picks that become disjoint contiguous index ranges (contiguous
/// ranges are always convex, so `collapse_soa` accepts them).
fn arb_groups() -> impl Strategy<Value = Vec<(prop::sample::Index, u8, u32)>> {
    prop::collection::vec((any::<prop::sample::Index>(), 1u8..4, 1u32..3), 0..3)
}

fn build(spec: &[NodeSpec]) -> SchedDfg {
    let mut g = SchedDfg::new();
    let x = g.live_in();
    for (i, &(lat, mask, live)) in spec.iter().enumerate() {
        let mut operands: Vec<Operand> = (0..i)
            .filter(|p| mask >> (p % 64) & 1 == 1)
            .take(3)
            .map(|p| Operand::Node(NodeId::new(p as u32)))
            .collect();
        if operands.is_empty() {
            operands.push(Operand::LiveIn(x));
        }
        let reads = operands.len().min(2);
        let id = g.add_node(SchedOp::new(lat, reads, 1, UnitClass::Alu), operands);
        if live {
            g.set_live_out(id, true);
        }
    }
    g
}

fn build_groups(k: usize, picks: &[(prop::sample::Index, u8, u32)]) -> Vec<(NodeSet, SchedOp)> {
    let mut groups = Vec::new();
    let mut next = 0usize;
    for (pick, span, glat) in picks {
        if next + 1 >= k {
            break;
        }
        let lo = next + pick.index(k - 1 - next);
        let hi = (lo + *span as usize).min(k - 1);
        if hi <= lo {
            break;
        }
        let mut set = NodeSet::new(k);
        for n in lo..=hi {
            set.insert(NodeId::new(n as u32));
        }
        groups.push((set, SchedOp::new(*glat, 2, 1, UnitClass::Asfu)));
        next = hi + 1;
    }
    groups
}

proptest! {
    /// Incremental ASAP/ALAP/height over the patched quotient equal full
    /// recomputation, for any latency patch and any convex group family.
    #[test]
    fn incremental_equals_full_recompute(
        spec in arb_dag(),
        patch in arb_patch(),
        picks in arb_groups(),
    ) {
        let dfg = build(&spec);
        let k = dfg.len();
        let base = SoaGraph::from_sched(&dfg);
        let bt = BaseTiming::of(&base);

        let mut patched = base.clone();
        for i in 0..k {
            if let Some(Some(lat)) = patch.get(i) {
                patched.lat[i] = *lat;
            }
        }
        let groups = build_groups(k, &picks);
        let mut qs = QuotientScratch::default();
        let mut q = Quotient::default();
        collapse_soa(&patched, &groups, &mut qs, &mut q);

        let (mut asap_i, mut alap_i, mut height_i) = (Vec::new(), Vec::new(), Vec::new());
        let mut needs = Vec::new();
        asap_incremental_into(&q, &bt, &base.lat, &mut asap_i, &mut needs);
        let len = length_from_asap(&q.graph, &asap_i);
        alap_incremental_into(&q, &bt, &base.lat, len, &mut alap_i, &mut needs);
        height_incremental_into(&q, &bt, &base.lat, &mut height_i, &mut needs);

        let (mut asap_f, mut alap_f, mut height_f) = (Vec::new(), Vec::new(), Vec::new());
        asap_into(&q.graph, &mut asap_f);
        alap_into(&q.graph, len, &mut alap_f);
        height_into(&q.graph, &mut height_f);

        prop_assert_eq!(&asap_i, &asap_f, "incremental ASAP diverged");
        prop_assert_eq!(&alap_i, &alap_f, "incremental ALAP diverged");
        prop_assert_eq!(&height_i, &height_f, "incremental heights diverged");
    }

    /// The uniform-shift lemma: relaxing the deadline shifts every ALAP
    /// slot by exactly the relaxation, so the walk deadline can be folded
    /// into `Max_AEC` queries instead of costing another reverse pass.
    #[test]
    fn alap_deadline_shift_is_uniform(
        spec in arb_dag(),
        picks in arb_groups(),
        extra in 0u32..7,
    ) {
        let dfg = build(&spec);
        let base = SoaGraph::from_sched(&dfg);
        let groups = build_groups(dfg.len(), &picks);
        let mut qs = QuotientScratch::default();
        let mut q = Quotient::default();
        collapse_soa(&base, &groups, &mut qs, &mut q);

        let mut asap = Vec::new();
        asap_into(&q.graph, &mut asap);
        let len = length_from_asap(&q.graph, &asap);
        let (mut at_len, mut relaxed) = (Vec::new(), Vec::new());
        alap_into(&q.graph, len, &mut at_len);
        alap_into(&q.graph, len + extra, &mut relaxed);
        for v in 0..q.graph.len() {
            prop_assert_eq!(relaxed[v], at_len[v] + extra, "vertex {}", v);
        }
    }
}
