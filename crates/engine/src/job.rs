//! The unit of engine work.

use crate::seed::derive_seed;

/// One exploration to run: a block, a repeat index, and the seed both imply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreJob {
    /// Index of the block in the engine's task list.
    pub block_index: usize,
    /// Which of the block's repeated explorations this is (0-based).
    pub repeat: usize,
    /// Derived RNG seed; see [`derive_seed`].
    pub seed: u64,
}

impl ExploreJob {
    /// Plans the full job list for `blocks` blocks × `repeats` repeats, in
    /// block-major order. The order is part of the determinism contract:
    /// results are committed by job index, so the reduction over repeats
    /// sees them in this order regardless of which worker ran what.
    pub fn plan(blocks: usize, repeats: usize, master_seed: u64) -> Vec<ExploreJob> {
        let repeats = repeats.max(1);
        (0..blocks)
            .flat_map(|block_index| {
                (0..repeats).map(move |repeat| ExploreJob {
                    block_index,
                    repeat,
                    seed: derive_seed(master_seed, block_index as u64, repeat as u64),
                })
            })
            .collect()
    }

    /// Plans jobs for a *subset* of a run's blocks, identified by their
    /// canonical indices in the full hot list. Seeds derive from those
    /// canonical indices, so exploring any subset — one block at a time,
    /// on resume, in any grouping — yields jobs bitwise identical to the
    /// ones [`ExploreJob::plan`] would assign the same blocks.
    pub fn plan_subset(indices: &[usize], repeats: usize, master_seed: u64) -> Vec<ExploreJob> {
        let repeats = repeats.max(1);
        indices
            .iter()
            .flat_map(|&block_index| {
                (0..repeats).map(move |repeat| ExploreJob {
                    block_index,
                    repeat,
                    seed: derive_seed(master_seed, block_index as u64, repeat as u64),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_block_major_and_seeded() {
        let jobs = ExploreJob::plan(2, 3, 99);
        assert_eq!(jobs.len(), 6);
        assert_eq!(
            jobs.iter()
                .map(|j| (j.block_index, j.repeat))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
        for j in &jobs {
            assert_eq!(
                j.seed,
                derive_seed(99, j.block_index as u64, j.repeat as u64)
            );
        }
    }

    #[test]
    fn zero_repeats_still_runs_once() {
        assert_eq!(ExploreJob::plan(3, 0, 1).len(), 3);
    }
}
