//! Deterministic parallel exploration engine.
//!
//! Owns the execution of ISE exploration runs: turning a program's blocks
//! into [`ExploreJob`]s, deriving a per-job RNG seed that does not depend on
//! scheduling, fanning jobs out over a scoped-thread worker pool, and
//! collecting run telemetry ([`RunMetrics`]) plus an optional event stream.
//!
//! The central contract is **bitwise determinism**: for a fixed master seed
//! the engine produces identical results for any worker count, because every
//! job's seed is a pure function of `(master_seed, block_index, repeat)` and
//! results are committed in job order, not completion order.

mod cancel;
mod engine;
mod events;
mod fault;
mod job;
mod metrics;
mod pool;
mod seed;

pub use cancel::{CancelToken, Cancelled};
pub use engine::{Algorithm, BlockResult, BlockTask, Engine, EngineOutcome, ExploreSpec};
pub use events::{EventSink, JsonlSink, NullSink, RunEvent, Seq, TaggedSink, VecSink};
pub use fault::{FaultKind, FaultPlan};
pub use job::ExploreJob;
pub use metrics::{BlockFailure, BlockSpread, PhaseProfile, PhaseStat, PhaseTimes, RunMetrics};
pub use pool::{
    run_jobs, run_jobs_anytime, run_jobs_cancellable, run_jobs_supervised, worker_count,
    AnytimeOutcome, JobPanic, PoolOutcome,
};
pub use seed::derive_seed;
