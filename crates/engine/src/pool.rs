//! A scoped-thread worker pool with deterministic result ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested worker count: `0` means "one per available core".
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `f` over every item, on up to `workers` threads (`0` = auto), and
/// returns the results **in item order** — each result lands in the slot of
/// its item index, so the output is identical for any worker count or
/// scheduling. Items are handed out through a shared cursor, which keeps
/// the pool busy even when per-item cost varies wildly (hot blocks next to
/// tiny ones).
///
/// Panics in `f` propagate once the scope joins.
pub fn run_jobs<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(workers).min(items.len().max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every job ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_auto_worker_count() {
        assert!(worker_count(0) >= 1);
        assert_eq!(worker_count(3), 3);
    }

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial = run_jobs(&items, 1, |i, x| i * 1000 + x * x);
        for workers in [2, 4, 8] {
            let parallel = run_jobs(&items, workers, |i, x| i * 1000 + x * x);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        let items: Vec<u64> = (0..20).collect();
        let out = run_jobs(&items, 4, |_, &x| {
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_jobs(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }
}
