//! A scoped-thread worker pool with deterministic result ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cancel::{CancelToken, Cancelled};

/// Resolves a requested worker count: `0` means "one per available core".
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `f` over every item, on up to `workers` threads (`0` = auto), and
/// returns the results **in item order** — each result lands in the slot of
/// its item index, so the output is identical for any worker count or
/// scheduling. Items are handed out through a shared cursor, which keeps
/// the pool busy even when per-item cost varies wildly (hot blocks next to
/// tiny ones).
///
/// Panics in `f` propagate once the scope joins.
pub fn run_jobs<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_jobs_cancellable(items, workers, &CancelToken::new(), f)
        .expect("a fresh token never cancels")
}

/// [`run_jobs`] with cooperative cancellation: the pool checks `cancel`
/// before claiming each item, so an in-progress `f` always finishes but no
/// new item starts once the token trips. Returns [`Cancelled`] if any item
/// was skipped; a token that trips only after every item completed still
/// yields `Ok` (the full result set exists, so there is nothing to abandon).
pub fn run_jobs_cancellable<T, R, F>(
    items: &[T],
    workers: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(workers).min(items.len().max(1));
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    if workers <= 1 {
        for (i, item) in items.iter().enumerate() {
            if cancel.is_cancelled() {
                return Err(Cancelled);
            }
            *slots[i].lock().expect("slot lock") = Some(f(i, item));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(i, &items[i]);
                    *slots[i].lock().expect("slot lock") = Some(result);
                });
            }
        });
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner().expect("slot lock") {
            Some(r) => out.push(r),
            None => return Err(Cancelled),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_auto_worker_count() {
        assert!(worker_count(0) >= 1);
        assert_eq!(worker_count(3), 3);
    }

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial = run_jobs(&items, 1, |i, x| i * 1000 + x * x);
        for workers in [2, 4, 8] {
            let parallel = run_jobs(&items, workers, |i, x| i * 1000 + x * x);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        let items: Vec<u64> = (0..20).collect();
        let out = run_jobs(&items, 4, |_, &x| {
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_jobs(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pre_cancelled_token_skips_all_items() {
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u32> = (0..8).collect();
        for workers in [1, 4] {
            let out = run_jobs_cancellable(&items, workers, &token, |_, &x| x);
            assert_eq!(out, Err(Cancelled), "workers={workers}");
        }
    }

    #[test]
    fn cancel_mid_run_stops_issuing_jobs() {
        let token = CancelToken::new();
        let items: Vec<usize> = (0..64).collect();
        let seen = AtomicUsize::new(0);
        let out = run_jobs_cancellable(&items, 2, &token, |i, _| {
            seen.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                token.cancel();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            i
        });
        assert_eq!(out, Err(Cancelled));
        // In-flight jobs finish; nothing new starts after the trip. With 2
        // workers at most one extra job can already be claimed.
        assert!(seen.load(Ordering::Relaxed) < items.len());
    }

    #[test]
    fn late_cancel_after_completion_still_returns_results() {
        let token = CancelToken::new();
        let items: Vec<u32> = (0..10).collect();
        let out = run_jobs_cancellable(&items, 4, &token, |_, &x| x * 2).unwrap();
        token.cancel();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }
}
