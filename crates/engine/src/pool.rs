//! A scoped-thread worker pool with deterministic result ordering and
//! panic isolation.
//!
//! [`run_jobs_supervised`] is the fault-tolerant core: each job runs under
//! `catch_unwind`, a panic becomes a structured [`JobPanic`] in that job's
//! result slot, and the worker that caught it keeps draining the queue —
//! logically, the supervisor resurrected it. The restart count is reported
//! so telemetry can distinguish a clean run from a survived one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::cancel::{CancelToken, Cancelled};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Every shared structure in this crate stays consistent under unwinding
/// (slots hold completed values only; sinks append whole lines), so a
/// poisoned lock carries no torn state — recovery is always sound here.
/// Never `unwrap` a [`PoisonError`] on these paths: one caught panic must
/// not cascade into killing every thread that shares the lock.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Resolves a requested worker count: `0` means "one per available core".
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A job that panicked instead of returning a result.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// Index of the item whose job panicked.
    pub index: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub payload: String,
}

/// What a supervised fan-out produced.
#[derive(Debug)]
pub struct PoolOutcome<R> {
    /// Per-item results in item order: `Ok` for completed jobs, `Err` for
    /// jobs whose closure panicked.
    pub results: Vec<Result<R, JobPanic>>,
    /// Panics caught (= workers logically resurrected by the supervisor).
    pub worker_restarts: usize,
}

/// What an anytime fan-out produced: every slot that completed before the
/// token tripped, in item order, with skipped slots left `None` instead of
/// the whole result set being discarded.
#[derive(Debug)]
pub struct AnytimeOutcome<R> {
    /// Per-item slots in item order: `Some(Ok)` completed, `Some(Err)`
    /// panicked, `None` never started (claimed after the token tripped).
    pub results: Vec<Option<Result<R, JobPanic>>>,
    /// Panics caught (= workers logically resurrected by the supervisor).
    pub worker_restarts: usize,
    /// Whether any slot was skipped because the token tripped.
    pub cancelled: bool,
}

/// Renders a panic payload for telemetry.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over every item, on up to `workers` threads (`0` = auto), and
/// returns the results **in item order** — each result lands in the slot of
/// its item index, so the output is identical for any worker count or
/// scheduling. Items are handed out through a shared cursor, which keeps
/// the pool busy even when per-item cost varies wildly (hot blocks next to
/// tiny ones).
///
/// Panics in `f` propagate once the scope joins.
pub fn run_jobs<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_jobs_cancellable(items, workers, &CancelToken::new(), f)
        .expect("a fresh token never cancels")
}

/// [`run_jobs`] with cooperative cancellation: the pool checks `cancel`
/// before claiming each item, so an in-progress `f` always finishes but no
/// new item starts once the token trips. Returns [`Cancelled`] if any item
/// was skipped; a token that trips only after every item completed still
/// yields `Ok` (the full result set exists, so there is nothing to abandon).
pub fn run_jobs_cancellable<T, R, F>(
    items: &[T],
    workers: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let outcome = run_jobs_supervised(items, workers, cancel, f)?;
    outcome
        .results
        .into_iter()
        .map(|r| match r {
            Ok(v) => Ok(v),
            // Callers of the unsupervised API expect job panics to
            // propagate, not to be swallowed into a partial result set.
            Err(p) => panic!("job {} panicked: {}", p.index, p.payload),
        })
        .collect()
}

/// The fault-isolating fan-out: like [`run_jobs_cancellable`], but a panic
/// in `f` is caught, recorded as that item's [`JobPanic`], and the worker
/// carries on with the next item. The outcome reports how many panics were
/// caught. Determinism is preserved: a panicking job affects only its own
/// slot, because jobs share no RNG or accumulator state.
pub fn run_jobs_supervised<T, R, F>(
    items: &[T],
    workers: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<PoolOutcome<R>, Cancelled>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let outcome = run_jobs_anytime(items, workers, cancel, f);
    if outcome.cancelled {
        return Err(Cancelled);
    }
    Ok(PoolOutcome {
        results: outcome
            .results
            .into_iter()
            .map(|slot| slot.expect("uncancelled outcome has every slot"))
            .collect(),
        worker_restarts: outcome.worker_restarts,
    })
}

/// The anytime fan-out: like [`run_jobs_supervised`], but a tripped token
/// does not discard the work already done. Every job completed (or caught
/// panicking) before the trip keeps its slot; slots never claimed stay
/// `None`. A token that trips only after the last item completed reports
/// `cancelled: false` — the full, deterministic result set exists.
pub fn run_jobs_anytime<T, R, F>(
    items: &[T],
    workers: usize,
    cancel: &CancelToken,
    f: F,
) -> AnytimeOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(workers).min(items.len().max(1));
    let slots: Vec<Mutex<Option<Result<R, JobPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    let restarts = AtomicUsize::new(0);
    let run_one = |i: usize| {
        let result = catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| {
            restarts.fetch_add(1, Ordering::Relaxed);
            JobPanic {
                index: i,
                payload: panic_message(payload),
            }
        });
        *lock_unpoisoned(&slots[i]) = Some(result);
    };
    if workers <= 1 {
        for i in 0..items.len() {
            if cancel.is_cancelled() {
                break;
            }
            run_one(i);
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    run_one(i);
                });
            }
        });
    }
    let mut results = Vec::with_capacity(items.len());
    let mut cancelled = false;
    for slot in slots {
        let slot = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
        cancelled |= slot.is_none();
        results.push(slot);
    }
    AnytimeOutcome {
        results,
        worker_restarts: restarts.load(Ordering::Relaxed),
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_auto_worker_count() {
        assert!(worker_count(0) >= 1);
        assert_eq!(worker_count(3), 3);
    }

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial = run_jobs(&items, 1, |i, x| i * 1000 + x * x);
        for workers in [2, 4, 8] {
            let parallel = run_jobs(&items, workers, |i, x| i * 1000 + x * x);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        let items: Vec<u64> = (0..20).collect();
        let out = run_jobs(&items, 4, |_, &x| {
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_jobs(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pre_cancelled_token_skips_all_items() {
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u32> = (0..8).collect();
        for workers in [1, 4] {
            let out = run_jobs_cancellable(&items, workers, &token, |_, &x| x);
            assert_eq!(out, Err(Cancelled), "workers={workers}");
        }
    }

    #[test]
    fn cancel_mid_run_stops_issuing_jobs() {
        let token = CancelToken::new();
        let items: Vec<usize> = (0..64).collect();
        let seen = AtomicUsize::new(0);
        let out = run_jobs_cancellable(&items, 2, &token, |i, _| {
            seen.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                token.cancel();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            i
        });
        assert_eq!(out, Err(Cancelled));
        // In-flight jobs finish; nothing new starts after the trip. With 2
        // workers at most one extra job can already be claimed.
        assert!(seen.load(Ordering::Relaxed) < items.len());
    }

    #[test]
    fn late_cancel_after_completion_still_returns_results() {
        let token = CancelToken::new();
        let items: Vec<u32> = (0..10).collect();
        let out = run_jobs_cancellable(&items, 4, &token, |_, &x| x * 2).unwrap();
        token.cancel();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn supervised_pool_isolates_panics_and_counts_restarts() {
        let items: Vec<usize> = (0..32).collect();
        for workers in [1, 4] {
            let outcome = run_jobs_supervised(&items, workers, &CancelToken::new(), |_, &x| {
                if x % 8 == 3 {
                    panic!("boom at {x}");
                }
                x * 2
            })
            .unwrap();
            assert_eq!(outcome.worker_restarts, 4, "workers={workers}");
            for (i, r) in outcome.results.iter().enumerate() {
                if i % 8 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert_eq!(p.payload, format!("boom at {i}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn panicking_worker_is_resurrected_for_later_items() {
        // One worker, first item panics: the remaining items must still
        // complete on the same (logically restarted) worker.
        let items: Vec<usize> = (0..6).collect();
        let outcome = run_jobs_supervised(&items, 1, &CancelToken::new(), |_, &x| {
            if x == 0 {
                panic!("first job dies");
            }
            x
        })
        .unwrap();
        assert!(outcome.results[0].is_err());
        assert!(outcome.results[1..].iter().all(|r| r.is_ok()));
        assert_eq!(outcome.worker_restarts, 1);
    }

    #[test]
    fn supervised_results_match_unsupervised_when_clean() {
        let items: Vec<u64> = (0..40).collect();
        let clean = run_jobs(&items, 4, |i, &x| (i as u64) * 100 + x);
        let supervised =
            run_jobs_supervised(&items, 4, &CancelToken::new(), |i, &x| (i as u64) * 100 + x)
                .unwrap();
        assert_eq!(supervised.worker_restarts, 0);
        let unwrapped: Vec<u64> = supervised.results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(unwrapped, clean);
    }
}
