//! The optional run event stream.
//!
//! Events are telemetry, not results: with more than one worker their
//! arrival order depends on scheduling. The determinism contract covers the
//! engine's *outputs*; consumers needing a stable view should sort by
//! `(block_index, repeat, round)`.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// One engine event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// A job was handed to a worker.
    JobStart {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Derived RNG seed.
        seed: u64,
    },
    /// A job finished.
    JobFinish {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Schedule length without ISEs, cycles.
        baseline_cycles: u32,
        /// Schedule length with this exploration's ISEs, cycles.
        cycles: u32,
        /// Ant iterations the job spent.
        iterations: usize,
        /// ISE candidates the job produced.
        candidates: usize,
        /// Wall time of the job, milliseconds.
        elapsed_ms: f64,
    },
    /// A job panicked and was isolated by pool supervision: its block loses
    /// one repeat, the rest of the run is untouched.
    JobFailed {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Derived RNG seed (replaying it reproduces the panic).
        seed: u64,
        /// The panic payload, stringified.
        error: String,
    },
    /// One ACO round of a traced job: every sampled walk TET, in iteration
    /// order (the raw material for convergence sparklines).
    RoundSummary {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Exploration round (1-based).
        round: usize,
        /// Best TET observed in the round, cycles.
        best_tet: u32,
        /// Sampled walk TETs, iteration order.
        tets: Vec<u32>,
    },
}

/// Receives engine events; shared across workers.
pub trait EventSink: Send + Sync {
    /// Accepts one event.
    fn emit(&self, event: RunEvent);

    /// Whether explorations should record per-iteration traces (the source
    /// of [`RunEvent::RoundSummary`]). Tracing costs memory per walk, so
    /// sinks that drop round data leave this `false`.
    fn wants_traces(&self) -> bool {
        false
    }
}

/// Discards everything.
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _: RunEvent) {}
}

/// Collects events in memory.
#[derive(Default)]
pub struct VecSink {
    events: Mutex<Vec<RunEvent>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the collected events, sorted to the stable
    /// `(block_index, repeat, round)` order.
    pub fn into_events(self) -> Vec<RunEvent> {
        // Sinks only ever append whole events, so a lock poisoned by a
        // panicking worker holds nothing torn — recover, don't cascade.
        let mut events = self
            .events
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        events.sort_by_key(|e| match e {
            RunEvent::JobStart {
                block_index,
                repeat,
                ..
            } => (*block_index, *repeat, 0, 0),
            RunEvent::RoundSummary {
                block_index,
                repeat,
                round,
                ..
            } => (*block_index, *repeat, 1, *round),
            RunEvent::JobFinish {
                block_index,
                repeat,
                ..
            }
            | RunEvent::JobFailed {
                block_index,
                repeat,
                ..
            } => (*block_index, *repeat, 2, 0),
        });
        events
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: RunEvent) {
        crate::pool::lock_unpoisoned(&self.events).push(event);
    }

    fn wants_traces(&self) -> bool {
        true
    }
}

/// Streams events as JSON Lines to a writer.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }

    /// Flushes buffered output.
    pub fn flush(&self) -> io::Result<()> {
        crate::pool::lock_unpoisoned(&self.out).flush()
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: RunEvent) {
        let line = serde_json::to_string(&event).expect("event serializes");
        let mut out = crate::pool::lock_unpoisoned(&self.out);
        // Telemetry must never take the run down; drop lines on I/O errors.
        let _ = writeln!(out, "{line}");
    }

    fn wants_traces(&self) -> bool {
        true
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let e = RunEvent::RoundSummary {
            block: "b".to_string(),
            block_index: 1,
            repeat: 2,
            round: 3,
            best_tet: 17,
            tets: vec![20, 19, 17],
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: RunEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn vec_sink_sorts_into_stable_order() {
        let sink = VecSink::new();
        let finish = |bi, rep| RunEvent::JobFinish {
            block: "b".to_string(),
            block_index: bi,
            repeat: rep,
            baseline_cycles: 10,
            cycles: 8,
            iterations: 5,
            candidates: 1,
            elapsed_ms: 0.1,
        };
        sink.emit(finish(1, 0));
        sink.emit(finish(0, 1));
        sink.emit(finish(0, 0));
        let order: Vec<(usize, usize)> = sink
            .into_events()
            .iter()
            .map(|e| match e {
                RunEvent::JobFinish {
                    block_index,
                    repeat,
                    ..
                } => (*block_index, *repeat),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0)]);
    }
}
