//! The optional run event stream.
//!
//! Events are telemetry, not results: with more than one worker their
//! arrival order depends on scheduling. The determinism contract covers the
//! engine's *outputs*. For a total order over a multi-worker JSONL stream,
//! sort by the `seq` field — sinks stamp it monotonically at emission, so
//! it reflects arrival order exactly. (The historical
//! `(block_index, repeat, round)` sort still yields the scheduling-
//! independent canonical order; [`VecSink::into_events`] applies it.)

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A sink-stamped monotonic sequence number.
///
/// Serializes as a bare integer; a *missing or null* field deserializes as
/// `0`, so event streams written before `seq` existed still parse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Seq(pub u64);

impl Serialize for Seq {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Seq {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            serde::Value::Null => Ok(Seq(0)),
            v => serde::de::from_value(&v).map(Seq),
        }
    }
}

/// One engine event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// A job was handed to a worker.
    JobStart {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Derived RNG seed.
        seed: u64,
        /// Sink-stamped emission order (0 in pre-`seq` streams).
        seq: Seq,
        /// Trace id of the request that owns the run, if any.
        trace: Option<String>,
    },
    /// A job finished.
    JobFinish {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Schedule length without ISEs, cycles.
        baseline_cycles: u32,
        /// Schedule length with this exploration's ISEs, cycles.
        cycles: u32,
        /// Ant iterations the job spent.
        iterations: usize,
        /// ISE candidates the job produced.
        candidates: usize,
        /// Wall time of the job, milliseconds.
        elapsed_ms: f64,
        /// Sink-stamped emission order (0 in pre-`seq` streams).
        seq: Seq,
        /// Trace id of the request that owns the run, if any.
        trace: Option<String>,
    },
    /// A job panicked and was isolated by pool supervision: its block loses
    /// one repeat, the rest of the run is untouched.
    JobFailed {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Derived RNG seed (replaying it reproduces the panic).
        seed: u64,
        /// The panic payload, stringified.
        error: String,
        /// Sink-stamped emission order (0 in pre-`seq` streams).
        seq: Seq,
        /// Trace id of the request that owns the run, if any.
        trace: Option<String>,
    },
    /// One ACO round of a traced job: every sampled walk TET, in iteration
    /// order (the raw material for convergence sparklines).
    RoundSummary {
        /// Block label.
        block: String,
        /// Block index in the hot set.
        block_index: usize,
        /// Repeat index.
        repeat: usize,
        /// Exploration round (1-based).
        round: usize,
        /// Best TET observed in the round, cycles.
        best_tet: u32,
        /// Sampled walk TETs, iteration order.
        tets: Vec<u32>,
        /// Sink-stamped emission order (0 in pre-`seq` streams).
        seq: Seq,
        /// Trace id of the request that owns the run, if any.
        trace: Option<String>,
    },
}

impl RunEvent {
    /// The sink-stamped sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            RunEvent::JobStart { seq, .. }
            | RunEvent::JobFinish { seq, .. }
            | RunEvent::JobFailed { seq, .. }
            | RunEvent::RoundSummary { seq, .. } => seq.0,
        }
    }

    /// Stamps the sequence number (sinks call this at emission).
    pub fn set_seq(&mut self, value: u64) {
        match self {
            RunEvent::JobStart { seq, .. }
            | RunEvent::JobFinish { seq, .. }
            | RunEvent::JobFailed { seq, .. }
            | RunEvent::RoundSummary { seq, .. } => *seq = Seq(value),
        }
    }

    /// The trace id stamped on the event, if any.
    pub fn trace_id(&self) -> Option<&str> {
        match self {
            RunEvent::JobStart { trace, .. }
            | RunEvent::JobFinish { trace, .. }
            | RunEvent::JobFailed { trace, .. }
            | RunEvent::RoundSummary { trace, .. } => trace.as_deref(),
        }
    }

    /// Stamps a trace id (see [`TaggedSink`]).
    pub fn set_trace(&mut self, id: &str) {
        match self {
            RunEvent::JobStart { trace, .. }
            | RunEvent::JobFinish { trace, .. }
            | RunEvent::JobFailed { trace, .. }
            | RunEvent::RoundSummary { trace, .. } => *trace = Some(id.to_string()),
        }
    }
}

/// Receives engine events; shared across workers.
pub trait EventSink: Send + Sync {
    /// Accepts one event.
    fn emit(&self, event: RunEvent);

    /// Whether explorations should record per-iteration traces (the source
    /// of [`RunEvent::RoundSummary`]). Tracing costs memory per walk, so
    /// sinks that drop round data leave this `false`.
    fn wants_traces(&self) -> bool {
        false
    }
}

/// Discards everything.
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _: RunEvent) {}
}

/// Wraps a sink, stamping every event with a trace id — the joint between
/// a request's `X-Isex-Trace-Id` and its engine telemetry.
pub struct TaggedSink<S> {
    inner: S,
    trace_id: String,
}

impl<S: EventSink> TaggedSink<S> {
    /// Stamps `trace_id` on everything emitted through `inner`.
    pub fn new(inner: S, trace_id: impl Into<String>) -> Self {
        TaggedSink {
            inner,
            trace_id: trace_id.into(),
        }
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSink> EventSink for TaggedSink<S> {
    fn emit(&self, mut event: RunEvent) {
        event.set_trace(&self.trace_id);
        self.inner.emit(event);
    }

    fn wants_traces(&self) -> bool {
        self.inner.wants_traces()
    }
}

/// Collects events in memory.
#[derive(Default)]
pub struct VecSink {
    events: Mutex<Vec<RunEvent>>,
    next_seq: AtomicU64,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the collected events, sorted to the stable
    /// `(block_index, repeat, round)` order. Each event's `seq` still
    /// carries its arrival order.
    pub fn into_events(self) -> Vec<RunEvent> {
        // Sinks only ever append whole events, so a lock poisoned by a
        // panicking worker holds nothing torn — recover, don't cascade.
        let mut events = self
            .events
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        events.sort_by_key(|e| match e {
            RunEvent::JobStart {
                block_index,
                repeat,
                ..
            } => (*block_index, *repeat, 0, 0),
            RunEvent::RoundSummary {
                block_index,
                repeat,
                round,
                ..
            } => (*block_index, *repeat, 1, *round),
            RunEvent::JobFinish {
                block_index,
                repeat,
                ..
            }
            | RunEvent::JobFailed {
                block_index,
                repeat,
                ..
            } => (*block_index, *repeat, 2, 0),
        });
        events
    }
}

impl EventSink for VecSink {
    fn emit(&self, mut event: RunEvent) {
        event.set_seq(self.next_seq.fetch_add(1, Ordering::Relaxed));
        crate::pool::lock_unpoisoned(&self.events).push(event);
    }

    fn wants_traces(&self) -> bool {
        true
    }
}

/// Streams events as JSON Lines to a writer.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    next_seq: AtomicU64,
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }

    /// Flushes buffered output.
    pub fn flush(&self) -> io::Result<()> {
        crate::pool::lock_unpoisoned(&self.out).flush()
    }

    /// Writes one pre-serialized event line verbatim, bypassing this sink's
    /// own `seq` stamping — for callers that number events elsewhere and
    /// tee the identical line into the file (the serving tier's per-job
    /// ring does this so file and ring share one numbering).
    pub fn emit_line(&self, line: &str) {
        let mut out = crate::pool::lock_unpoisoned(&self.out);
        let _ = writeln!(out, "{line}");
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, mut event: RunEvent) {
        // Stamp and serialize under the writer lock so the stream's line
        // order and its seq order agree exactly.
        let mut out = crate::pool::lock_unpoisoned(&self.out);
        event.set_seq(self.next_seq.fetch_add(1, Ordering::Relaxed));
        let line = serde_json::to_string(&event).expect("event serializes");
        // Telemetry must never take the run down; drop lines on I/O errors.
        let _ = writeln!(out, "{line}");
    }

    fn wants_traces(&self) -> bool {
        true
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let e = RunEvent::RoundSummary {
            block: "b".to_string(),
            block_index: 1,
            repeat: 2,
            round: 3,
            best_tet: 17,
            tets: vec![20, 19, 17],
            seq: Seq(9),
            trace: Some("t-42".to_string()),
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: RunEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn pre_seq_streams_still_deserialize_with_defaults() {
        // A JobStart line exactly as PR 1's JsonlSink wrote it: no seq, no
        // trace field at all.
        let old = r#"{"JobStart":{"block":"b0","block_index":0,"repeat":1,"seed":42}}"#;
        let e: RunEvent = serde_json::from_str(old).unwrap();
        assert_eq!(e.seq(), 0);
        assert_eq!(e.trace_id(), None);
        match e {
            RunEvent::JobStart {
                block,
                block_index,
                repeat,
                seed,
                ..
            } => {
                assert_eq!(block, "b0");
                assert_eq!(block_index, 0);
                assert_eq!(repeat, 1);
                assert_eq!(seed, 42);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn vec_sink_sorts_into_stable_order_but_seq_keeps_arrival_order() {
        let sink = VecSink::new();
        let finish = |bi, rep| RunEvent::JobFinish {
            block: "b".to_string(),
            block_index: bi,
            repeat: rep,
            baseline_cycles: 10,
            cycles: 8,
            iterations: 5,
            candidates: 1,
            elapsed_ms: 0.1,
            seq: Seq(0),
            trace: None,
        };
        sink.emit(finish(1, 0));
        sink.emit(finish(0, 1));
        sink.emit(finish(0, 0));
        let order: Vec<(usize, usize, u64)> = sink
            .into_events()
            .iter()
            .map(|e| match e {
                RunEvent::JobFinish {
                    block_index,
                    repeat,
                    seq,
                    ..
                } => (*block_index, *repeat, seq.0),
                _ => unreachable!(),
            })
            .collect();
        // Canonical sort for the tuple, emission order in seq.
        assert_eq!(order, vec![(0, 0, 2), (0, 1, 1), (1, 0, 0)]);
    }

    #[test]
    fn tagged_sink_stamps_trace_ids() {
        let sink = TaggedSink::new(VecSink::new(), "req-7");
        sink.emit(RunEvent::JobStart {
            block: "b".to_string(),
            block_index: 0,
            repeat: 0,
            seed: 1,
            seq: Seq(0),
            trace: None,
        });
        let events = sink.into_inner().into_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id(), Some("req-7"));
    }
}
