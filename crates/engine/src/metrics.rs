//! Run telemetry: what a run cost and how consistent the search was.

use serde::{Deserialize, Serialize};

pub use isex_trace::{PhaseProfile, PhaseStat};

/// Wall-clock time per flow phase, milliseconds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Exploration (all jobs, wall time — not CPU time summed over workers).
    pub explore_ms: f64,
    /// Candidate selection under budgets.
    pub select_ms: f64,
    /// Pattern replacement and re-scheduling over all blocks.
    pub replace_ms: f64,
    /// End-to-end run time.
    pub total_ms: f64,
}

/// Best-of-N consistency of one block's repeated explorations.
///
/// A wide best/worst gap means the ACO search is noisy on this block and
/// the `repeats` knob is earning its keep; a zero gap means repeats are
/// redundant there.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockSpread {
    /// Block label.
    pub block: String,
    /// Explorations run.
    pub repeats: usize,
    /// Schedule length without ISEs, cycles.
    pub baseline_cycles: u32,
    /// Best `cycles_with_ises` over the repeats.
    pub best_cycles: u32,
    /// Worst `cycles_with_ises` over the repeats.
    pub worst_cycles: u32,
}

/// A block that produced **no** kept exploration: every one of its repeat
/// jobs panicked. The rest of the run is unaffected — jobs share no state,
/// so the supervisor drops only this block's patterns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockFailure {
    /// Block label.
    pub block: String,
    /// Index of the block in the run's task list.
    pub block_index: usize,
    /// Repeat jobs that panicked (= all of the block's repeats).
    pub repeats_failed: usize,
    /// The first panic's payload, stringified.
    pub error: String,
}

/// Everything measured about one engine-driven flow run.
///
/// The leading *provenance* fields (`master_seed`, `algorithm`,
/// `benchmark`, `version`) make every serialized record self-describing:
/// a `--metrics` file or a server response can be re-run — and, thanks to
/// engine determinism, bitwise reproduced — from the record alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// The run's master seed.
    pub master_seed: u64,
    /// Explorer that drove the run (`"MI"` / `"SI"`), or `""` when the
    /// producing layer did not say.
    pub algorithm: String,
    /// Name of the explored program (e.g. `"crc32-O3"`), or `""`.
    pub benchmark: String,
    /// `isex-engine` crate version that produced the record.
    pub version: String,
    /// Worker threads used for exploration.
    pub workers: usize,
    /// Jobs planned (blocks × repeats).
    pub jobs_total: usize,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Jobs that panicked and were isolated by pool supervision.
    pub jobs_failed: usize,
    /// Workers logically resurrected after a caught panic (one per
    /// isolated job panic).
    pub worker_restarts: usize,
    /// Hot blocks explored.
    pub blocks_explored: usize,
    /// Blocks skipped because a checkpoint journal already held their
    /// results (always 0 for non-checkpointed runs).
    pub blocks_resumed: usize,
    /// Blocks with no surviving exploration (every repeat panicked).
    pub block_failures: Vec<BlockFailure>,
    /// Ant iterations summed over all jobs.
    pub ant_iterations: usize,
    /// ISE candidates produced by the kept (best-of-N) explorations.
    pub candidates_generated: usize,
    /// Candidates that survived budgeted selection.
    pub candidates_accepted: usize,
    /// Per-phase wall time.
    pub phases: PhaseTimes,
    /// Per-block best-of-N spread.
    pub block_spread: Vec<BlockSpread>,
    /// Per-span-name aggregate from the run's tracer (empty when tracing
    /// was disabled; missing in pre-tracing records, which still parse).
    pub phase_profile: PhaseProfile,
    /// Whether the run was cut short (deadline, cancellation, or explicit
    /// round budget) and the report is a valid best-so-far partial rather
    /// than the canonical answer. Degraded records are barred from the
    /// result cache, the disk store, and coalesced job results. Absent
    /// from serialized form when `false`, so pristine records stay
    /// byte-identical to pre-anytime output (and old records still parse).
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub degraded: bool,
    /// Jobs never started because the run's token tripped first.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub jobs_skipped: usize,
    /// Blocks whose result is best-so-far (skipped repeats or a mid-rounds
    /// cut) in a degraded run.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub blocks_degraded: usize,
}

fn is_zero(n: &usize) -> bool {
    *n == 0
}

impl RunMetrics {
    /// An empty record for a run that explored nothing.
    pub fn empty(master_seed: u64, workers: usize) -> Self {
        RunMetrics {
            master_seed,
            algorithm: String::new(),
            benchmark: String::new(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            workers,
            jobs_total: 0,
            jobs_completed: 0,
            jobs_failed: 0,
            worker_restarts: 0,
            blocks_explored: 0,
            blocks_resumed: 0,
            block_failures: Vec::new(),
            ant_iterations: 0,
            candidates_generated: 0,
            candidates_accepted: 0,
            phases: PhaseTimes::default(),
            block_spread: Vec::new(),
            phase_profile: PhaseProfile::default(),
            degraded: false,
            jobs_skipped: 0,
            blocks_degraded: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_round_trip_through_json() {
        let mut m = RunMetrics::empty(7, 4);
        m.algorithm = "MI".to_string();
        m.benchmark = "crc32-O3".to_string();
        m.jobs_total = 10;
        m.jobs_completed = 9;
        m.jobs_failed = 1;
        m.worker_restarts = 1;
        m.blocks_resumed = 2;
        m.block_failures.push(BlockFailure {
            block: "poisoned".to_string(),
            block_index: 3,
            repeats_failed: 1,
            error: "injected fault: panic at block=3 repeat=0".to_string(),
        });
        m.ant_iterations = 1234;
        m.phase_profile.0.push(PhaseStat {
            name: "aco.round".to_string(),
            count: 3,
            total_ms: 4.5,
            max_ms: 2.0,
        });
        m.phases.explore_ms = 12.5;
        m.phases.total_ms = 13.0;
        m.block_spread.push(BlockSpread {
            block: "crc32_loop".to_string(),
            repeats: 5,
            baseline_cycles: 40,
            best_cycles: 28,
            worst_cycles: 33,
        });
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
