//! Deterministic fault injection for exploration runs.
//!
//! A [`FaultPlan`] decides, as a pure function of a job's `(block, repeat)`
//! coordinates, whether that job panics, stalls, or spuriously cancels the
//! run. Decisions use the same SplitMix64 derivation as job seeds
//! ([`crate::derive_seed`]), so a plan is bitwise reproducible: the same
//! plan string always faults the same jobs, at any worker count. That is
//! what makes the supervision and resume paths *testable* — CI can inject
//! a panic into exactly one job and assert every other result is
//! untouched.
//!
//! # Grammar
//!
//! A plan is a whitespace- or comma-separated list of rules:
//!
//! ```text
//! rule    := KIND selector [":" DURATION "ms"]
//! KIND    := "panic" | "delay" | "cancel" | "drop"
//! selector:= ":" NUM "/" DEN     probabilistic, decided per (block, repeat)
//!          | "@" BLOCK "." REPEAT  exactly one job
//! seed    := "seed:" N           decision seed (default 0), one per plan
//! ```
//!
//! Examples: `panic:1/3` (every job panics with probability 1/3),
//! `delay:1/5:20ms` (1 in 5 jobs sleeps 20 ms), `panic@2.0` (block 2,
//! repeat 0 panics), `cancel:1/8 seed:7`, `drop@1.0` (sever the worker
//! connection carrying block 1's first dispatch).
//!
//! The `drop` kind is a *network* fault: it is a no-op inside the engine
//! (a single process has no connection to sever) and takes effect at the
//! cluster transport layer, where the coordinator consults
//! [`FaultPlan::drops`] with `(block, dispatch attempt)` coordinates and
//! severs the chosen worker's connection instead of sending the job —
//! making partition drills as reproducible as the in-process kinds.

use crate::cancel::CancelToken;
use crate::seed::derive_seed;

/// What an injected fault does to a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The job panics (`panic!`) — exercises panic isolation and worker
    /// supervision.
    Panic,
    /// The job sleeps for the given milliseconds before running —
    /// exercises deadline and backpressure paths without changing results.
    Delay(u64),
    /// The run's [`CancelToken`] trips at the job's start — exercises
    /// cooperative-cancellation handling end to end.
    Cancel,
    /// The cluster transport severs the worker connection chosen for this
    /// `(block, attempt)` instead of dispatching the job — exercises
    /// partition detection and re-dispatch. Ignored by the in-process
    /// engine ([`FaultPlan::apply`] treats it as a no-op).
    Drop,
}

/// Which jobs a rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Selector {
    /// Fault with probability `num/den`, decided by seeded SplitMix64 over
    /// the job coordinates.
    Ratio { num: u64, den: u64 },
    /// Fault exactly the job at `(block, repeat)`.
    Exact { block: usize, repeat: usize },
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct FaultRule {
    kind: FaultKind,
    selector: Selector,
}

/// A parsed, deterministic fault-injection plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
    source: String,
}

/// Per-kind salt folded into the decision seed so `panic:1/2 delay:1/2`
/// faults *different* halves of the job space.
fn kind_salt(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::Panic => 0x70616e6963,    // "panic"
        FaultKind::Delay(_) => 0x64656c6179, // "delay"
        FaultKind::Cancel => 0x63616e63656c, // "cancel"
        FaultKind::Drop => 0x64726f70,       // "drop"
    }
}

impl FaultPlan {
    /// Parses a plan string; see the module docs for the grammar.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        let mut seed = 0u64;
        for token in spec.split([' ', ',', '\t']).filter(|t| !t.is_empty()) {
            if let Some(value) = token.strip_prefix("seed:") {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad seed `{value}` in `{token}`"))?;
                continue;
            }
            rules.push(parse_rule(token)?);
        }
        if rules.is_empty() {
            return Err(format!("fault plan `{spec}` contains no rules"));
        }
        Ok(FaultPlan {
            rules,
            seed,
            source: spec.to_string(),
        })
    }

    /// The plan string this was parsed from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The faults that hit the job at `(block, repeat)`, in rule order.
    /// Pure: same plan, same coordinates, same answer — on every machine.
    pub fn decide(&self, block: usize, repeat: usize) -> Vec<FaultKind> {
        self.rules
            .iter()
            .filter(|rule| match rule.selector {
                Selector::Exact {
                    block: b,
                    repeat: r,
                } => b == block && r == repeat,
                Selector::Ratio { num, den } => {
                    let roll = derive_seed(
                        self.seed ^ kind_salt(rule.kind),
                        block as u64,
                        repeat as u64,
                    );
                    roll % den < num
                }
            })
            .map(|rule| rule.kind)
            .collect()
    }

    /// Whether the cluster transport should sever the connection carrying
    /// dispatch `attempt` of `block` instead of delivering it. Pure in
    /// `(plan seed ⊕ drop salt, block, attempt)`, so a partition drill
    /// severs the same dispatches on every run — the engine-level kinds
    /// never alias it (distinct salt).
    pub fn drops(&self, block: usize, attempt: usize) -> bool {
        self.decide(block, attempt).contains(&FaultKind::Drop)
    }

    /// Applies the job's faults in rule order: delays sleep, cancels trip
    /// `cancel`, and a panic fault panics with a structured message naming
    /// the job. Called by the engine inside pool supervision, so an
    /// injected panic travels the exact path a real one would. `drop`
    /// rules are transport-layer faults and do nothing here.
    pub fn apply(&self, block: usize, repeat: usize, cancel: &CancelToken) {
        for kind in self.decide(block, repeat) {
            match kind {
                FaultKind::Delay(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
                FaultKind::Cancel => cancel.cancel(),
                FaultKind::Panic => panic!(
                    "injected fault: panic at block={block} repeat={repeat} (plan `{}`)",
                    self.source
                ),
                FaultKind::Drop => {}
            }
        }
    }
}

fn parse_rule(token: &str) -> Result<FaultRule, String> {
    let (kind_name, rest) = match token.find(['@', ':']) {
        Some(i) => (&token[..i], &token[i..]),
        None => {
            return Err(format!(
                "rule `{token}` needs a selector (`:N/D` or `@BLOCK.REPEAT`)"
            ))
        }
    };
    let bad = |what: &str| format!("{what} in rule `{token}`");

    // Split the selector from an optional trailing `:Nms` duration.
    let (selector_text, duration_ms) = match rest
        .rfind(':')
        .filter(|&i| i > 0 && rest[i + 1..].ends_with("ms"))
    {
        Some(i) => {
            let digits = &rest[i + 1..rest.len() - 2];
            let ms = digits
                .parse::<u64>()
                .map_err(|_| bad(&format!("bad duration `{digits}ms`")))?;
            (&rest[..i], Some(ms))
        }
        None => (rest, None),
    };

    let selector = if let Some(at) = selector_text.strip_prefix('@') {
        let (block, repeat) = at
            .split_once('.')
            .ok_or_else(|| bad("exact selector must be `@BLOCK.REPEAT`"))?;
        Selector::Exact {
            block: block.parse().map_err(|_| bad("bad block index"))?,
            repeat: repeat.parse().map_err(|_| bad("bad repeat index"))?,
        }
    } else if let Some(ratio) = selector_text.strip_prefix(':') {
        let (num, den) = ratio
            .split_once('/')
            .ok_or_else(|| bad("ratio selector must be `:NUM/DEN`"))?;
        let num = num.parse().map_err(|_| bad("bad ratio numerator"))?;
        let den: u64 = den.parse().map_err(|_| bad("bad ratio denominator"))?;
        if den == 0 {
            return Err(bad("ratio denominator must be nonzero"));
        }
        Selector::Ratio { num, den }
    } else {
        return Err(bad("unrecognised selector"));
    };

    let kind = match kind_name {
        "panic" => FaultKind::Panic,
        "delay" => FaultKind::Delay(duration_ms.unwrap_or(10)),
        "cancel" => FaultKind::Cancel,
        "drop" => FaultKind::Drop,
        other => return Err(format!("unknown fault kind `{other}` in `{token}`")),
    };
    if duration_ms.is_some() && !matches!(kind, FaultKind::Delay(_)) {
        return Err(bad("only `delay` takes a duration"));
    }
    Ok(FaultRule { kind, selector })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_examples() {
        for spec in [
            "panic:1/3",
            "delay:1/5:20ms",
            "panic@2.0",
            "cancel:1/8 seed:7",
            "panic:1/3 delay:1/5",
            "panic:1/3,delay:1/5:5ms",
            "drop:1/4",
            "drop@1.0",
            "drop:1/2 panic:1/8",
        ] {
            let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(plan.source(), spec);
        }
    }

    #[test]
    fn rejects_malformed_plans() {
        for spec in [
            "",
            "panic",
            "panic:1/0",
            "panic:x/3",
            "explode:1/2",
            "panic@3",
            "panic@a.b",
            "panic:1/2:10ms", // duration on a non-delay rule
            "drop:1/2:10ms",  // drop takes no duration either
            "seed:abc panic:1/2",
            "seed:1",
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "`{spec}` should not parse");
        }
    }

    #[test]
    fn exact_selector_hits_exactly_one_job() {
        let plan = FaultPlan::parse("panic@2.1").unwrap();
        for block in 0..4 {
            for repeat in 0..3 {
                let hits = plan.decide(block, repeat);
                if (block, repeat) == (2, 1) {
                    assert_eq!(hits, vec![FaultKind::Panic]);
                } else {
                    assert!(hits.is_empty(), "({block},{repeat}) should be clean");
                }
            }
        }
    }

    #[test]
    fn ratio_decisions_are_deterministic_and_roughly_proportional() {
        let plan = FaultPlan::parse("panic:1/3").unwrap();
        let again = FaultPlan::parse("panic:1/3").unwrap();
        let mut faulted = 0usize;
        for block in 0..40 {
            for repeat in 0..25 {
                let a = plan.decide(block, repeat);
                assert_eq!(a, again.decide(block, repeat), "must be pure");
                faulted += usize::from(!a.is_empty());
            }
        }
        // 1000 trials at p = 1/3: far from zero and far from all.
        assert!((150..=550).contains(&faulted), "{faulted}/1000 faulted");
    }

    #[test]
    fn seed_and_kind_decorrelate_decisions() {
        let a = FaultPlan::parse("panic:1/2").unwrap();
        let b = FaultPlan::parse("panic:1/2 seed:9").unwrap();
        let c = FaultPlan::parse("delay:1/2").unwrap();
        let differs = |x: &FaultPlan, y: &FaultPlan| {
            (0..100).any(|i| x.decide(i, 0).is_empty() != y.decide(i, 0).is_empty())
        };
        assert!(differs(&a, &b), "seed must matter");
        assert!(differs(&a, &c), "kind salt must matter");
    }

    #[test]
    fn cancel_fault_trips_the_token() {
        let plan = FaultPlan::parse("cancel@0.0").unwrap();
        let token = CancelToken::new();
        plan.apply(1, 1, &token);
        assert!(!token.is_cancelled());
        plan.apply(0, 0, &token);
        assert!(token.is_cancelled());
    }

    #[test]
    fn drop_is_a_transport_fault_only() {
        let plan = FaultPlan::parse("drop@2.0").unwrap();
        assert!(plan.drops(2, 0));
        assert!(!plan.drops(2, 1), "second dispatch attempt goes through");
        assert!(!plan.drops(0, 0));
        // The engine-level apply ignores drop rules entirely: no panic, no
        // cancel, no delay.
        let token = CancelToken::new();
        plan.apply(2, 0, &token);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn drop_salt_decorrelates_from_engine_kinds() {
        let drop = FaultPlan::parse("drop:1/2").unwrap();
        let panic = FaultPlan::parse("panic:1/2").unwrap();
        assert!(
            (0..100).any(|b| drop.drops(b, 0) == panic.decide(b, 0).is_empty()),
            "drop decisions must not mirror panic decisions"
        );
    }

    #[test]
    fn panic_fault_panics_with_job_coordinates() {
        let plan = FaultPlan::parse("panic@1.2").unwrap();
        let token = CancelToken::new();
        let err = std::panic::catch_unwind(|| plan.apply(1, 2, &token)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("block=1 repeat=2"), "{msg}");
    }
}
