//! Cooperative cancellation for engine runs.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the party
//! that wants a run stopped (a serving deadline, a ctrl-C handler) and the
//! worker pool running it. Cancellation is *cooperative and job-grained*:
//! the pool checks the token before claiming each job, so an in-progress
//! block exploration always runs to completion, but no further jobs start
//! once the token trips. That keeps cancellation clean — no half-committed
//! results, no poisoned locks — at the cost of job-sized latency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones observe the same flag; once [`cancel`](CancelToken::cancel) is
/// called the token can never be un-cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the flag has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// The shared flag itself — for layers (e.g. the core explorer's
    /// between-rounds stop check) that observe cancellation without
    /// depending on this crate.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// Error returned when a run was abandoned because its token tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("run cancelled before all jobs completed")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_once_and_for_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        assert!(!c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
    }
}
