//! The engine proper: job fan-out, per-block best-of-N reduction.

use std::time::Instant;

use isex_aco::AcoParams;
use isex_core::{Constraints, Exploration, MultiIssueExplorer, SingleIssueExplorer, TraceEntry};
use isex_isa::{MachineConfig, ProgramDfg};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cancel::{CancelToken, Cancelled};
use crate::events::{EventSink, RunEvent};
use crate::job::ExploreJob;
use crate::metrics::BlockSpread;
use crate::pool::{run_jobs_cancellable, worker_count};

/// Which explorer drives a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's multi-issue-aware explorer ("MI").
    MultiIssue,
    /// The legality-only baseline ("SI", Wu et al. \[8\]).
    SingleIssue,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::MultiIssue => "MI",
            Algorithm::SingleIssue => "SI",
        })
    }
}

/// What to explore and how hard.
#[derive(Clone, Debug)]
pub struct ExploreSpec {
    /// The modelled machine.
    pub machine: MachineConfig,
    /// §4.2 port constraints.
    pub constraints: Constraints,
    /// ACO tunables.
    pub params: AcoParams,
    /// Explorer choice.
    pub algorithm: Algorithm,
    /// Explorations per block, best kept (§5.1 uses 5).
    pub repeats: usize,
    /// Worker threads; `0` = one per available core. Results are identical
    /// for every value — only wall time changes.
    pub jobs: usize,
}

/// One block to explore.
#[derive(Clone, Copy)]
pub struct BlockTask<'a> {
    /// Label used in events and telemetry.
    pub name: &'a str,
    /// The block's data-flow graph.
    pub dfg: &'a ProgramDfg,
}

/// The kept (best-of-N) exploration of one block.
#[derive(Clone, Debug)]
pub struct BlockResult {
    /// Index into the task list passed to [`Engine::explore_blocks`].
    pub block_index: usize,
    /// The best exploration over the block's repeats.
    pub best: Exploration,
    /// Ant iterations summed over *all* the block's repeats.
    pub iterations: usize,
    /// Best-of-N consistency of the repeats.
    pub spread: BlockSpread,
}

/// Aggregate outcome of one engine run.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// Per-block kept results, in task order.
    pub blocks: Vec<BlockResult>,
    /// Jobs that ran (blocks × repeats).
    pub jobs_completed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Exploration wall time, milliseconds.
    pub explore_ms: f64,
}

/// Runs exploration jobs deterministically in parallel.
///
/// For a fixed master seed the outcome is bitwise identical at any worker
/// count: every job's seed comes from [`crate::derive_seed`], jobs never
/// share RNG state, and results are reduced in job order, not completion
/// order.
pub struct Engine {
    spec: ExploreSpec,
}

impl Engine {
    /// Creates an engine.
    pub fn new(spec: ExploreSpec) -> Self {
        Engine { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &ExploreSpec {
        &self.spec
    }

    /// Explores every block `repeats` times, keeping each block's best
    /// exploration (fewest cycles, ties broken by smaller area).
    pub fn explore_blocks(
        &self,
        blocks: &[BlockTask<'_>],
        master_seed: u64,
        sink: &dyn EventSink,
    ) -> EngineOutcome {
        self.try_explore_blocks(blocks, master_seed, sink, &CancelToken::new())
            .expect("a fresh token never cancels")
    }

    /// [`explore_blocks`](Engine::explore_blocks) with cooperative
    /// cancellation: no new job starts once `cancel` trips, the in-progress
    /// jobs finish, and the run returns [`Cancelled`] instead of a partial
    /// outcome. A token that trips only after the last job completed still
    /// yields `Ok` — the full (and deterministic) outcome exists.
    pub fn try_explore_blocks(
        &self,
        blocks: &[BlockTask<'_>],
        master_seed: u64,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> Result<EngineOutcome, Cancelled> {
        let repeats = self.spec.repeats.max(1);
        let workers = worker_count(self.spec.jobs);
        let start = Instant::now();
        let jobs = ExploreJob::plan(blocks.len(), repeats, master_seed);
        let explorations = run_jobs_cancellable(&jobs, self.spec.jobs, cancel, |_, job| {
            self.run_job(blocks[job.block_index], *job, sink)
        })?;

        let mut results = Vec::with_capacity(blocks.len());
        for (block_index, (task, per_block)) in
            blocks.iter().zip(explorations.chunks(repeats)).enumerate()
        {
            let iterations = per_block.iter().map(|e| e.iterations).sum();
            // Identical tie-break as the historical serial flow: cycles
            // first, then area, first-seen wins — in repeat order.
            let mut best: Option<&Exploration> = None;
            for e in per_block {
                let better = match best {
                    None => true,
                    Some(b) => {
                        e.cycles_with_ises < b.cycles_with_ises
                            || (e.cycles_with_ises == b.cycles_with_ises
                                && e.total_area() < b.total_area())
                    }
                };
                if better {
                    best = Some(e);
                }
            }
            let best = best.expect("repeats >= 1").clone();
            let spread = BlockSpread {
                block: task.name.to_string(),
                repeats,
                baseline_cycles: best.baseline_cycles,
                best_cycles: best.cycles_with_ises,
                worst_cycles: per_block
                    .iter()
                    .map(|e| e.cycles_with_ises)
                    .max()
                    .expect("repeats >= 1"),
            };
            results.push(BlockResult {
                block_index,
                best,
                iterations,
                spread,
            });
        }
        Ok(EngineOutcome {
            blocks: results,
            jobs_completed: jobs.len(),
            workers,
            explore_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }

    fn run_job(&self, task: BlockTask<'_>, job: ExploreJob, sink: &dyn EventSink) -> Exploration {
        sink.emit(RunEvent::JobStart {
            block: task.name.to_string(),
            block_index: job.block_index,
            repeat: job.repeat,
            seed: job.seed,
        });
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(job.seed);
        let (exploration, trace) = match self.spec.algorithm {
            Algorithm::MultiIssue => {
                let explorer = MultiIssueExplorer::with_params(
                    self.spec.machine,
                    self.spec.constraints,
                    self.spec.params,
                );
                if sink.wants_traces() {
                    explorer.explore_traced(task.dfg, &mut rng)
                } else {
                    (explorer.explore(task.dfg, &mut rng), Vec::new())
                }
            }
            // The SI baseline records no per-iteration trace.
            Algorithm::SingleIssue => (
                SingleIssueExplorer::with_params(
                    self.spec.machine,
                    self.spec.constraints,
                    self.spec.params,
                )
                .explore(task.dfg, &mut rng),
                Vec::new(),
            ),
        };
        emit_round_summaries(&trace, task.name, &job, sink);
        sink.emit(RunEvent::JobFinish {
            block: task.name.to_string(),
            block_index: job.block_index,
            repeat: job.repeat,
            baseline_cycles: exploration.baseline_cycles,
            cycles: exploration.cycles_with_ises,
            iterations: exploration.iterations,
            candidates: exploration.candidates.len(),
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        });
        exploration
    }
}

fn emit_round_summaries(trace: &[TraceEntry], block: &str, job: &ExploreJob, sink: &dyn EventSink) {
    let mut i = 0;
    while i < trace.len() {
        let round = trace[i].round;
        let mut tets = Vec::new();
        let mut best_tet = u32::MAX;
        while i < trace.len() && trace[i].round == round {
            tets.push(trace[i].tet);
            best_tet = best_tet.min(trace[i].tet);
            i += 1;
        }
        sink.emit(RunEvent::RoundSummary {
            block: block.to_string(),
            block_index: job.block_index,
            repeat: job.repeat,
            round,
            best_tet,
            tets,
        });
    }
}
