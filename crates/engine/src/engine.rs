//! The engine proper: job fan-out, per-block best-of-N reduction.

use std::sync::Arc;
use std::time::Instant;

use isex_aco::AcoParams;
use isex_core::{
    Constraints, EvalStats, Exploration, MultiIssueExplorer, SingleIssueExplorer, TraceEntry,
};
use isex_isa::{MachineConfig, ProgramDfg};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cancel::{CancelToken, Cancelled};
use crate::events::{EventSink, RunEvent};
use crate::fault::FaultPlan;
use crate::job::ExploreJob;
use crate::metrics::{BlockFailure, BlockSpread};
use crate::pool::{run_jobs_anytime, worker_count};

/// Which explorer drives a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's multi-issue-aware explorer ("MI").
    MultiIssue,
    /// The legality-only baseline ("SI", Wu et al. \[8\]).
    SingleIssue,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::MultiIssue => "MI",
            Algorithm::SingleIssue => "SI",
        })
    }
}

/// What to explore and how hard.
#[derive(Clone, Debug)]
pub struct ExploreSpec {
    /// The modelled machine.
    pub machine: MachineConfig,
    /// §4.2 port constraints.
    pub constraints: Constraints,
    /// ACO tunables.
    pub params: AcoParams,
    /// Explorer choice.
    pub algorithm: Algorithm,
    /// Explorations per block, best kept (§5.1 uses 5).
    pub repeats: usize,
    /// Worker threads; `0` = one per available core. Results are identical
    /// for every value — only wall time changes.
    pub jobs: usize,
    /// Round-scoped hot-path evaluation cache (one-shot lowering plus
    /// walk/candidate memoisation). Results are bitwise identical either
    /// way — only wall time changes; `false` forces the legacy
    /// re-lowering paths (benchmarks and regression pins).
    pub eval_cache: bool,
    /// Incremental/SoA hot-loop evaluation (persistent per-round timing
    /// baselines, arena quotients, counter-driven scheduling) on the
    /// eval-cache miss path. Results are bitwise identical either way;
    /// only meaningful when [`ExploreSpec::eval_cache`] is on.
    pub incremental: bool,
    /// Deterministic fault injection (tests and resilience drills only).
    /// `None` in production; see [`FaultPlan`].
    pub fault_plan: Option<FaultPlan>,
    /// Span collector; [`Tracer::disabled`](isex_trace::Tracer::disabled)
    /// (the default) costs one atomic/thread-local check per span site.
    /// Tracing only observes — results stay bitwise identical.
    pub tracer: isex_trace::Tracer,
}

/// One block to explore.
#[derive(Clone, Copy)]
pub struct BlockTask<'a> {
    /// Label used in events and telemetry.
    pub name: &'a str,
    /// The block's data-flow graph.
    pub dfg: &'a ProgramDfg,
}

/// The kept (best-of-N) exploration of one block.
#[derive(Clone, Debug)]
pub struct BlockResult {
    /// Index into the task list passed to [`Engine::explore_blocks`].
    pub block_index: usize,
    /// The best exploration over the block's repeats.
    pub best: Exploration,
    /// Ant iterations summed over *all* the block's repeats.
    pub iterations: usize,
    /// Best-of-N consistency of the repeats.
    pub spread: BlockSpread,
    /// Repeats that ran to completion (= planned repeats unless the run
    /// was cut short).
    pub repeats_completed: usize,
    /// Whether this block's kept result is best-so-far rather than
    /// canonical: some repeats were skipped after a cancellation, or the
    /// kept exploration itself was cut mid-rounds.
    pub degraded: bool,
}

/// Aggregate outcome of one engine run.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// Per-block kept results, in task order. Blocks whose every repeat
    /// panicked are absent here and listed in `failures` instead.
    pub blocks: Vec<BlockResult>,
    /// Blocks that produced no kept exploration (every repeat panicked).
    pub failures: Vec<BlockFailure>,
    /// Canonical indices of blocks whose every repeat was skipped by a
    /// tripped token before it could start — no result, but no failure
    /// either. Empty unless `cancelled`.
    pub skipped_blocks: Vec<usize>,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Jobs that panicked and were isolated by pool supervision.
    pub jobs_failed: usize,
    /// Jobs never started because the token tripped first.
    pub jobs_skipped: usize,
    /// Whether the token tripped before every job completed — the outcome
    /// is a valid best-so-far partial, not the canonical answer.
    pub cancelled: bool,
    /// Workers logically resurrected after a caught panic.
    pub worker_restarts: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Exploration wall time, milliseconds.
    pub explore_ms: f64,
    /// Hot-path evaluation-cache hits summed over all jobs (0 when
    /// [`ExploreSpec::eval_cache`] is off or the SI algorithm ran).
    pub eval_cache_hits: u64,
    /// Hot-path evaluation-cache misses summed over all jobs.
    pub eval_cache_misses: u64,
    /// Full ASAP passes avoided by shared-ASAP ALAP derivation, summed
    /// over all jobs (the timing-layer bugfix made visible).
    pub asap_saved: u64,
    /// Incremental-timing quotient vertices copied from a round baseline.
    pub incr_copied: u64,
    /// Incremental-timing quotient vertices recomputed in dirty cones.
    pub incr_recomputed: u64,
}

/// Runs exploration jobs deterministically in parallel.
///
/// For a fixed master seed the outcome is bitwise identical at any worker
/// count: every job's seed comes from [`crate::derive_seed`], jobs never
/// share RNG state, and results are reduced in job order, not completion
/// order.
pub struct Engine {
    spec: ExploreSpec,
}

impl Engine {
    /// Creates an engine.
    pub fn new(spec: ExploreSpec) -> Self {
        Engine { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &ExploreSpec {
        &self.spec
    }

    /// Explores every block `repeats` times, keeping each block's best
    /// exploration (fewest cycles, ties broken by smaller area).
    pub fn explore_blocks(
        &self,
        blocks: &[BlockTask<'_>],
        master_seed: u64,
        sink: &dyn EventSink,
    ) -> EngineOutcome {
        self.try_explore_blocks(blocks, master_seed, sink, &CancelToken::new())
            .expect("a fresh token never cancels")
    }

    /// [`explore_blocks`](Engine::explore_blocks) with cooperative
    /// cancellation: no new job starts once `cancel` trips, the in-progress
    /// jobs finish, and the run returns [`Cancelled`] instead of a partial
    /// outcome. A token that trips only after the last job completed still
    /// yields `Ok` — the full (and deterministic) outcome exists.
    pub fn try_explore_blocks(
        &self,
        blocks: &[BlockTask<'_>],
        master_seed: u64,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> Result<EngineOutcome, Cancelled> {
        let indices: Vec<usize> = (0..blocks.len()).collect();
        self.try_explore_subset(blocks, &indices, master_seed, sink, cancel)
    }

    /// Explores a *subset* of a run's blocks, preserving their canonical
    /// block indices for seed derivation.
    ///
    /// `indices[i]` is the position `tasks[i]` holds in the full run's hot
    /// list; job seeds derive from that canonical index, so exploring
    /// blocks one at a time (the checkpoint/resume path) yields results
    /// bitwise identical to one all-blocks call. Panicking jobs are
    /// isolated: a block keeps the best of its surviving repeats, and a
    /// block whose every repeat panicked lands in
    /// [`EngineOutcome::failures`] instead of aborting the run.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` and `indices` differ in length.
    pub fn try_explore_subset(
        &self,
        tasks: &[BlockTask<'_>],
        indices: &[usize],
        master_seed: u64,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> Result<EngineOutcome, Cancelled> {
        let outcome = self.explore_subset_anytime(tasks, indices, master_seed, sink, cancel);
        if outcome.cancelled {
            return Err(Cancelled);
        }
        Ok(outcome)
    }

    /// [`try_explore_subset`](Engine::try_explore_subset) with anytime
    /// semantics: a tripped token yields the best-so-far partial outcome
    /// (`cancelled: true`, per-block degraded provenance) instead of
    /// discarding completed work. With an untripped token the outcome is
    /// bitwise identical to the non-anytime path.
    pub fn explore_subset_anytime(
        &self,
        tasks: &[BlockTask<'_>],
        indices: &[usize],
        master_seed: u64,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> EngineOutcome {
        assert_eq!(tasks.len(), indices.len(), "one canonical index per task");
        let repeats = self.spec.repeats.max(1);
        let workers = worker_count(self.spec.jobs);
        let start = Instant::now();
        let jobs = ExploreJob::plan_subset(indices, repeats, master_seed);
        // Counters only — safe to share across workers without affecting
        // determinism (each job's exploration never reads them).
        let eval_stats = Arc::new(EvalStats::default());
        let outcome = run_jobs_anytime(&jobs, self.spec.jobs, cancel, |pos, job| {
            // Jobs are planned task-major, `repeats` per task.
            self.run_job(tasks[pos / repeats], *job, sink, cancel, &eval_stats)
        });

        let mut results = Vec::with_capacity(tasks.len());
        let mut failures = Vec::new();
        let mut skipped_blocks = Vec::new();
        let mut jobs_completed = 0usize;
        let mut jobs_failed = 0usize;
        let mut jobs_skipped = 0usize;
        for (t, ((task, &block_index), per_block)) in tasks
            .iter()
            .zip(indices.iter())
            .zip(outcome.results.chunks(repeats))
            .enumerate()
        {
            let survivors: Vec<&Exploration> = per_block
                .iter()
                .filter_map(|slot| slot.as_ref().and_then(|r| r.as_ref().ok()))
                .collect();
            jobs_completed += survivors.len();
            jobs_skipped += per_block.iter().filter(|slot| slot.is_none()).count();
            let mut panics = 0usize;
            for (rep, slot) in per_block.iter().enumerate() {
                if let Some(Err(p)) = slot {
                    panics += 1;
                    sink.emit(RunEvent::JobFailed {
                        block: task.name.to_string(),
                        block_index,
                        repeat: rep,
                        seed: jobs[t * repeats + rep].seed,
                        error: p.payload.clone(),
                        seq: crate::events::Seq(0),
                        trace: None,
                    });
                }
            }
            jobs_failed += panics;
            if survivors.is_empty() {
                if panics > 0 {
                    let error = per_block
                        .iter()
                        .find_map(|slot| slot.as_ref().and_then(|r| r.as_ref().err()))
                        .map(|p| p.payload.clone())
                        .unwrap_or_default();
                    failures.push(BlockFailure {
                        block: task.name.to_string(),
                        block_index,
                        repeats_failed: repeats,
                        error,
                    });
                } else {
                    // Every repeat was skipped by the trip: nothing ran,
                    // nothing failed — the block simply has no result yet.
                    skipped_blocks.push(block_index);
                }
                continue;
            }
            let iterations = survivors.iter().map(|e| e.iterations).sum();
            // Identical tie-break as the historical serial flow: cycles
            // first, then area, first-seen wins — in repeat order. On a
            // full tie a non-degraded exploration beats a degraded one, so
            // partial work never shadows an equally good canonical repeat.
            let mut best: Option<&Exploration> = None;
            for &e in &survivors {
                let better = match best {
                    None => true,
                    Some(b) => {
                        e.cycles_with_ises < b.cycles_with_ises
                            || (e.cycles_with_ises == b.cycles_with_ises
                                && e.total_area() < b.total_area())
                            || (e.cycles_with_ises == b.cycles_with_ises
                                && e.total_area() == b.total_area()
                                && b.degraded
                                && !e.degraded)
                    }
                };
                if better {
                    best = Some(e);
                }
            }
            let best = best.expect("at least one survivor").clone();
            let spread = BlockSpread {
                block: task.name.to_string(),
                repeats,
                baseline_cycles: best.baseline_cycles,
                best_cycles: best.cycles_with_ises,
                worst_cycles: survivors
                    .iter()
                    .map(|e| e.cycles_with_ises)
                    .max()
                    .expect("at least one survivor"),
            };
            let repeats_completed = survivors.len();
            let degraded = best.degraded || repeats_completed + panics < repeats;
            results.push(BlockResult {
                block_index,
                best,
                iterations,
                spread,
                repeats_completed,
                degraded,
            });
        }
        EngineOutcome {
            blocks: results,
            failures,
            skipped_blocks,
            jobs_completed,
            jobs_failed,
            jobs_skipped,
            cancelled: outcome.cancelled,
            worker_restarts: outcome.worker_restarts,
            workers,
            explore_ms: start.elapsed().as_secs_f64() * 1e3,
            eval_cache_hits: eval_stats.hits(),
            eval_cache_misses: eval_stats.misses(),
            asap_saved: eval_stats.asap_saved(),
            incr_copied: eval_stats.incr_copied(),
            incr_recomputed: eval_stats.incr_recomputed(),
        }
    }

    fn run_job(
        &self,
        task: BlockTask<'_>,
        job: ExploreJob,
        sink: &dyn EventSink,
        cancel: &CancelToken,
        eval_stats: &Arc<EvalStats>,
    ) -> Exploration {
        // Attach per job, not per worker: the pool's threads are scoped to
        // one engine call, and the guard flushes this thread's buffered
        // spans even when the job panics (unwinding drops it last).
        let _trace = self.spec.tracer.attach();
        let _job_span = self.spec.tracer.span_with("engine.job", || {
            vec![
                ("block", task.name.to_string()),
                ("block_index", job.block_index.to_string()),
                ("repeat", job.repeat.to_string()),
                ("seed", job.seed.to_string()),
            ]
        });
        if let Some(plan) = &self.spec.fault_plan {
            plan.apply(job.block_index, job.repeat, cancel);
        }
        sink.emit(RunEvent::JobStart {
            block: task.name.to_string(),
            block_index: job.block_index,
            repeat: job.repeat,
            seed: job.seed,
            seq: crate::events::Seq(0),
            trace: None,
        });
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(job.seed);
        let (exploration, trace) = match self.spec.algorithm {
            Algorithm::MultiIssue => {
                let mut explorer = MultiIssueExplorer::with_params(
                    self.spec.machine,
                    self.spec.constraints,
                    self.spec.params,
                );
                explorer.eval_cache = self.spec.eval_cache;
                explorer.incremental = self.spec.incremental;
                explorer.eval_stats = Some(Arc::clone(eval_stats));
                // The anytime hook: a token tripping mid-job stops the
                // round loop at the next boundary, and the job returns its
                // best-so-far (degraded) exploration instead of burning the
                // rest of the deadline.
                explorer.stop = Some(cancel.flag());
                if sink.wants_traces() {
                    explorer.explore_traced(task.dfg, &mut rng)
                } else {
                    (explorer.explore(task.dfg, &mut rng), Vec::new())
                }
            }
            // The SI baseline records no per-iteration trace.
            Algorithm::SingleIssue => (
                SingleIssueExplorer::with_params(
                    self.spec.machine,
                    self.spec.constraints,
                    self.spec.params,
                )
                .explore(task.dfg, &mut rng),
                Vec::new(),
            ),
        };
        emit_round_summaries(&trace, task.name, &job, sink);
        sink.emit(RunEvent::JobFinish {
            block: task.name.to_string(),
            block_index: job.block_index,
            repeat: job.repeat,
            baseline_cycles: exploration.baseline_cycles,
            cycles: exploration.cycles_with_ises,
            iterations: exploration.iterations,
            candidates: exploration.candidates.len(),
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            seq: crate::events::Seq(0),
            trace: None,
        });
        exploration
    }
}

fn emit_round_summaries(trace: &[TraceEntry], block: &str, job: &ExploreJob, sink: &dyn EventSink) {
    let mut i = 0;
    while i < trace.len() {
        let round = trace[i].round;
        let mut tets = Vec::new();
        let mut best_tet = u32::MAX;
        while i < trace.len() && trace[i].round == round {
            tets.push(trace[i].tet);
            best_tet = best_tet.min(trace[i].tet);
            i += 1;
        }
        sink.emit(RunEvent::RoundSummary {
            block: block.to_string(),
            block_index: job.block_index,
            repeat: job.repeat,
            round,
            best_tet,
            tets,
            seq: crate::events::Seq(0),
            trace: None,
        });
    }
}
