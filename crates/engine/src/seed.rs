//! Deterministic per-job seed derivation.

/// Derives the RNG seed for one exploration job from the run's master seed
/// and the job's coordinates.
///
/// The seed is a pure function of `(master_seed, block_index, repeat)` —
/// nothing about scheduling, worker count or completion order enters it —
/// which is what makes engine runs bitwise reproducible at any parallelism.
/// Each component passes through a full SplitMix64 mix before the next is
/// folded in, so adjacent blocks/repeats land in statistically unrelated
/// stream positions (unlike the xor-of-shifted-indices scheme this
/// replaces, which left high bits of the master seed untouched and made
/// `(block 2, repeat 0)` collide with `(block 0, repeat 0)` whenever the
/// master seed had matching bits 32..48 — see `seeds_do_not_collide`).
pub fn derive_seed(master_seed: u64, block_index: u64, repeat: u64) -> u64 {
    let mut state = master_seed;
    let mixed_master = rand::splitmix64(&mut state);
    state = mixed_master ^ block_index;
    let mixed_block = rand::splitmix64(&mut state);
    state = mixed_block ^ repeat;
    rand::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_pure() {
        assert_eq!(derive_seed(42, 3, 1), derive_seed(42, 3, 1));
    }

    #[test]
    fn seeds_do_not_collide() {
        // Every coordinate must matter, including in combinations the old
        // shift-xor scheme conflated.
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 42, u64::MAX, 0x0001_5e00_0000_0000] {
            for block in 0..8u64 {
                for rep in 0..8u64 {
                    assert!(
                        seen.insert(derive_seed(master, block, rep)),
                        "collision at master={master:#x} block={block} rep={rep}"
                    );
                }
            }
        }
    }

    #[test]
    fn components_avalanche() {
        // Flipping one low bit of any component flips roughly half the
        // output bits.
        let base = derive_seed(7, 2, 3);
        for other in [
            derive_seed(6, 2, 3),
            derive_seed(7, 3, 3),
            derive_seed(7, 2, 2),
        ] {
            let flipped = (base ^ other).count_ones();
            assert!(
                (16..=48).contains(&flipped),
                "weak diffusion: {flipped} bits"
            );
        }
    }
}
