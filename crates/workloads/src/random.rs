//! Random layered DFG generation for property tests and complexity
//! benches.
//!
//! The generator produces DAGs with controllable size and shape: `width`
//! controls how many independent operations share a layer (instruction-
//! level parallelism), `mem_fraction` inserts non-ISE-eligible memory
//! operations, and everything is driven by a seeded RNG so tests are
//! reproducible.

use isex_dfg::Operand;
use isex_isa::{Opcode, Operation, ProgramDfg};
use rand::seq::SliceRandom;
use rand::Rng;

/// Shape parameters of a random DFG.
#[derive(Clone, Copy, Debug)]
pub struct RandomDfgConfig {
    /// Number of operations.
    pub nodes: usize,
    /// Approximate operations per dependence layer (≥ 1).
    pub width: usize,
    /// Fraction of memory (load/store) operations in `[0, 1]`.
    pub mem_fraction: f64,
    /// Number of live-in values feeding the sources.
    pub live_ins: usize,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            nodes: 40,
            width: 3,
            mem_fraction: 0.15,
            live_ins: 6,
        }
    }
}

const ALU_POOL: &[Opcode] = &[
    Opcode::Add,
    Opcode::Addu,
    Opcode::Addiu,
    Opcode::Sub,
    Opcode::Subu,
    Opcode::And,
    Opcode::Andi,
    Opcode::Or,
    Opcode::Ori,
    Opcode::Xor,
    Opcode::Xori,
    Opcode::Nor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
];

/// Generates a random layered DFG.
///
/// Sinks are marked live-out so port analyses see realistic outputs.
///
/// # Panics
///
/// Panics if `nodes == 0`, `width == 0` or `live_ins == 0`.
///
/// # Example
///
/// ```
/// use isex_workloads::random::{random_dfg, RandomDfgConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dfg = random_dfg(&RandomDfgConfig::default(), &mut rng);
/// assert_eq!(dfg.len(), 40);
/// ```
pub fn random_dfg<R: Rng + ?Sized>(cfg: &RandomDfgConfig, rng: &mut R) -> ProgramDfg {
    assert!(cfg.nodes > 0 && cfg.width > 0 && cfg.live_ins > 0);
    let mut dfg = ProgramDfg::new();
    let live_ins: Vec<Operand> = (0..cfg.live_ins)
        .map(|_| Operand::LiveIn(dfg.live_in()))
        .collect();
    let mut layers: Vec<Vec<Operand>> = vec![live_ins];
    let mut emitted = 0usize;
    while emitted < cfg.nodes {
        let this_layer = rng.gen_range(1..=cfg.width).min(cfg.nodes - emitted);
        let mut produced = Vec::new();
        for _ in 0..this_layer {
            // Operands come from the previous layer (guaranteeing depth)
            // and any earlier layer.
            let prev = layers.last().expect("seeded with live-ins");
            let a = *prev.choose(rng).expect("layers are non-empty");
            let all: Vec<Operand> = layers.iter().flatten().copied().collect();
            let b = *all.choose(rng).expect("non-empty");
            let is_mem = rng.gen_bool(cfg.mem_fraction.clamp(0.0, 1.0));
            let result = if is_mem {
                if rng.gen_bool(0.5) {
                    Some(Operand::Node(
                        dfg.add_node(Operation::new(Opcode::Lw), vec![a]),
                    ))
                } else {
                    dfg.add_node(Operation::new(Opcode::Sw), vec![a, b]);
                    None
                }
            } else {
                let opc = *ALU_POOL.choose(rng).expect("pool non-empty");
                let second = if rng.gen_bool(0.25) {
                    Operand::Const(rng.gen_range(0..256))
                } else {
                    b
                };
                Some(Operand::Node(
                    dfg.add_node(Operation::new(opc), vec![a, second]),
                ))
            };
            emitted += 1;
            if let Some(v) = result {
                produced.push(v);
            }
            if emitted == cfg.nodes {
                break;
            }
        }
        if !produced.is_empty() {
            layers.push(produced);
        }
    }
    // Sinks become live-outs.
    for id in dfg.node_ids().collect::<Vec<_>>() {
        if dfg.is_sink(id) && dfg.node(id).payload().opcode().class() != isex_isa::OpClass::Store {
            dfg.set_live_out(id, true);
        }
    }
    dfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for n in [1usize, 7, 64, 200] {
            let cfg = RandomDfgConfig {
                nodes: n,
                ..Default::default()
            };
            let dfg = random_dfg(&cfg, &mut rng);
            assert_eq!(dfg.len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let dfg = random_dfg(&RandomDfgConfig::default(), &mut rng);
            dfg.iter()
                .map(|(_, n)| n.payload().opcode().mnemonic())
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }

    #[test]
    fn wide_configs_are_shallower() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let narrow = random_dfg(
            &RandomDfgConfig {
                nodes: 80,
                width: 1,
                mem_fraction: 0.0,
                live_ins: 4,
            },
            &mut rng,
        );
        let wide = random_dfg(
            &RandomDfgConfig {
                nodes: 80,
                width: 8,
                mem_fraction: 0.0,
                live_ins: 4,
            },
            &mut rng,
        );
        let dn = isex_dfg::analysis::critical_path_len(&narrow);
        let dw = isex_dfg::analysis::critical_path_len(&wide);
        assert!(dn > dw, "narrow {dn} vs wide {dw}");
    }

    #[test]
    fn zero_mem_fraction_has_no_memory_ops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let dfg = random_dfg(
            &RandomDfgConfig {
                mem_fraction: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(dfg.iter().all(|(_, n)| !n.payload().opcode().is_memory()));
    }
}
