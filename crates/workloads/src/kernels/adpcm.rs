//! ADPCM: the encoder's delta-quantisation step.
//!
//! `diff = sample − valpred`; absolute value, then the 3-bit delta via
//! threshold compares against `step`, and the predictor update
//! `vpdiff = step>>3 (+ step>>2 + step>>1 + step …)` folded branch-free.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

/// Branch-free |x| : `m = x >> 31; (x ^ m) − m`.
fn abs(b: &mut BlockBuilder, x: Operand) -> Operand {
    let m = b.op(Sra, x, b.imm(31));
    let t = b.op(Xor, x, m);
    b.op(Subu, t, m)
}

/// The quantisation core: returns `(delta, vpdiff)`.
fn quantise(b: &mut BlockBuilder, adiff: Operand, step: Operand) -> (Operand, Operand) {
    // delta bit 2: adiff >= step
    let lt2 = b.op(Slt, adiff, step);
    let b2 = b.op(Xori, lt2, b.imm(1));
    // conditional subtract: adiff2 = adiff - (step & -b2)
    let m2 = b.op(Sub, b.imm(0), b2);
    let s2 = b.op(And, step, m2);
    let adiff2 = b.op(Subu, adiff, s2);
    // delta bit 1: adiff2 >= step>>1
    let h = b.op(Srl, step, b.imm(1));
    let lt1 = b.op(Slt, adiff2, h);
    let b1 = b.op(Xori, lt1, b.imm(1));
    let m1 = b.op(Sub, b.imm(0), b1);
    let s1 = b.op(And, h, m1);
    let adiff1 = b.op(Subu, adiff2, s1);
    // delta bit 0: adiff1 >= step>>2
    let q = b.op(Srl, step, b.imm(2));
    let lt0 = b.op(Slt, adiff1, q);
    let b0 = b.op(Xori, lt0, b.imm(1));
    // delta = (b2<<2)|(b1<<1)|b0
    let d2 = b.op(Sll, b2, b.imm(2));
    let d1 = b.op(Sll, b1, b.imm(1));
    let d21 = b.op(Or, d2, d1);
    let delta = b.op(Or, d21, b0);
    // vpdiff = (step>>3) + selected shares
    let e = b.op(Srl, step, b.imm(3));
    let v0 = b.op(And, step, m2);
    let v1 = b.op(And, h, m1);
    let m0 = b.op(Sub, b.imm(0), b0);
    let v2 = b.op(And, q, m0);
    let t1 = b.op(Addu, e, v0);
    let t2 = b.op(Addu, t1, v1);
    let vpdiff = b.op(Addu, t2, v2);
    (delta, vpdiff)
}

fn hot_o0() -> BasicBlock {
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let psample = b.live();
    let sample = b.load(psample);
    let valpred = {
        let a = b.op(Addiu, frame, b.imm(4));
        b.load(a)
    };
    let step = {
        let a = b.op(Addiu, frame, b.imm(8));
        b.load(a)
    };
    let diff = b.op(Sub, sample, valpred);
    let diff2 = b.spill_reload(diff, frame, 12);
    let adiff = abs(&mut b, diff2);
    let adiff2 = b.spill_reload(adiff, frame, 16);
    let (delta, vpdiff) = quantise(&mut b, adiff2, step);
    let vp2 = b.op(Addu, valpred, vpdiff);
    b.out(delta);
    b.out(vp2);
    BasicBlock::new("adpcm_step_o0", b.finish(), 300_000)
}

fn hot_o3() -> BasicBlock {
    // Two samples per iteration, everything in registers.
    let mut b = BlockBuilder::new();
    let psample = b.live();
    let mut valpred = b.live();
    let step = b.live();
    for i in 0..2 {
        let sample = if i == 0 {
            b.load(psample)
        } else {
            let a = b.op(Addiu, psample, b.imm(2 * i));
            b.load(a)
        };
        let diff = b.op(Sub, sample, valpred);
        let adiff = abs(&mut b, diff);
        let (delta, vpdiff) = quantise(&mut b, adiff, step);
        valpred = b.op(Addu, valpred, vpdiff);
        b.out(delta);
    }
    b.out(valpred);
    BasicBlock::new("adpcm_step_o3", b.finish(), 150_000)
}

/// Builds the ADPCM program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl) = match opt {
        OptLevel::O0 => (hot_o0(), 300_000),
        OptLevel::O3 => (hot_o3(), 150_000),
    };
    Program::new(
        format!("adpcm-{opt}"),
        vec![
            hot,
            super::loop_ctrl("adpcm_loop_ctrl", ctrl),
            super::init_block("adpcm_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiser_is_compare_heavy() {
        let p = program(OptLevel::O3);
        let slts = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Slt)
            .count();
        assert!(slts >= 6, "two unrolled quantisers have ≥6 compares");
    }

    #[test]
    fn both_levels_build() {
        assert!(program(OptLevel::O0).hottest().dfg.len() > 20);
        assert!(program(OptLevel::O3).hottest().dfg.len() > 40);
    }
}
