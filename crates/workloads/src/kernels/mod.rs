//! Hand-lowered hot kernels of the seven benchmarks (§5.1).
//!
//! Each module builds the benchmark's hot inner-loop body as a PISA-like
//! basic block at `-O0` (spill-heavy, not unrolled) and `-O3`
//! (register-promoted, unrolled) fidelity, plus the surrounding cold
//! blocks, and attaches a hot-dominated execution profile.

pub mod adpcm;
pub mod bitcount;
pub mod blowfish;
pub mod crc32;
pub mod dijkstra;
pub mod fft;
pub mod jpeg;

use isex_isa::Opcode;

use crate::{BasicBlock, BlockBuilder};

/// The loop-control block every benchmark shares: induction-variable
/// increment, bound compare, branch.
pub(crate) fn loop_ctrl(name: &str, count: u64) -> BasicBlock {
    let mut b = BlockBuilder::new();
    let i = b.live();
    let n = b.live();
    let i2 = b.op(Opcode::Addiu, i, b.imm(1));
    let c = b.op(Opcode::Slt, i2, n);
    b.op(Opcode::Bne, c, b.imm(0));
    b.out(i2);
    BasicBlock::new(name, b.finish(), count)
}

/// Public wrapper for [`loop_ctrl`] used by the `extra` workloads module.
pub(crate) fn loop_ctrl_pub(name: &str, count: u64) -> BasicBlock {
    loop_ctrl(name, count)
}

/// A small one-off setup block (pointer/constant initialisation).
pub(crate) fn init_block(name: &str) -> BasicBlock {
    let mut b = BlockBuilder::new();
    let base = b.live();
    let hi = b.op1(Opcode::Lui, b.imm(0x1000));
    let ptr = b.op(Opcode::Addiu, hi, b.imm(0x40));
    let len = b.op(Opcode::Addiu, base, b.imm(256));
    b.out(ptr);
    b.out(len);
    BasicBlock::new(name, b.finish(), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_blocks_are_well_formed() {
        let lc = loop_ctrl("lc", 10);
        assert_eq!(lc.dfg.len(), 3);
        let init = init_block("init");
        assert_eq!(init.exec_count, 1);
        assert!(init.dfg.len() >= 3);
    }
}
