//! Blowfish: one Feistel round with the four S-box F-function.
//!
//! `F(x) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d]`, byte indices extracted with
//! shifts and masks; `xr ^= F(xl) ^ P[i]`.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

/// Extracts byte `shift` of `x`, scales it and looks it up in `sbox`.
fn sbox_lookup(b: &mut BlockBuilder, x: Operand, shift: i64, sbox: Operand) -> Operand {
    let sh = if shift > 0 {
        b.op(Srl, x, b.imm(shift))
    } else {
        x
    };
    let byte = b.op(Andi, sh, b.imm(0xff));
    let off = b.op(Sll, byte, b.imm(2));
    let addr = b.op(Addu, sbox, off);
    b.load(addr)
}

/// The F function plus the round xor; returns the new `xr`.
fn round(
    b: &mut BlockBuilder,
    xl: Operand,
    xr: Operand,
    sboxes: &[Operand; 4],
    pkey: Operand,
) -> Operand {
    let sa = sbox_lookup(b, xl, 24, sboxes[0]);
    let sb = sbox_lookup(b, xl, 16, sboxes[1]);
    let sc = sbox_lookup(b, xl, 8, sboxes[2]);
    let sd = sbox_lookup(b, xl, 0, sboxes[3]);
    let t1 = b.op(Addu, sa, sb);
    let t2 = b.op(Xor, t1, sc);
    let f = b.op(Addu, t2, sd);
    let fp = b.op(Xor, f, pkey);
    b.op(Xor, xr, fp)
}

fn hot_o0() -> BasicBlock {
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let sboxes = [b.live(), b.live(), b.live(), b.live()];
    let xl = {
        let a = b.op(Addiu, frame, b.imm(0));
        b.load(a)
    };
    let xr = {
        let a = b.op(Addiu, frame, b.imm(4));
        b.load(a)
    };
    let pkey = {
        let a = b.op(Addiu, frame, b.imm(8));
        b.load(a)
    };
    let new_xr = round(&mut b, xl, xr, &sboxes, pkey);
    // Swap halves through the stack like -O0 does.
    let a0 = b.op(Addiu, frame, b.imm(0));
    b.store(new_xr, a0);
    let a4 = b.op(Addiu, frame, b.imm(4));
    b.store(xl, a4);
    b.out(new_xr);
    BasicBlock::new("blowfish_round_o0", b.finish(), 400_000)
}

fn hot_o3() -> BasicBlock {
    // Two rounds fused, halves in registers.
    let mut b = BlockBuilder::new();
    let sboxes = [b.live(), b.live(), b.live(), b.live()];
    let parr = b.live();
    let xl = b.live();
    let xr = b.live();
    let p0 = b.load(parr);
    let r1 = round(&mut b, xl, xr, &sboxes, p0);
    let a1 = b.op(Addiu, parr, b.imm(4));
    let p1 = b.load(a1);
    let r2 = round(&mut b, r1, xl, &sboxes, p1);
    b.out(r1);
    b.out(r2);
    BasicBlock::new("blowfish_rounds_o3", b.finish(), 200_000)
}

/// Builds the Blowfish program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl) = match opt {
        OptLevel::O0 => (hot_o0(), 400_000),
        OptLevel::O3 => (hot_o3(), 200_000),
    };
    Program::new(
        format!("blowfish-{opt}"),
        vec![
            hot,
            super::loop_ctrl("blowfish_round_ctrl", ctrl),
            super::init_block("blowfish_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_sbox_lookups_per_round() {
        let p = program(OptLevel::O0);
        let loads = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Lw)
            .count();
        assert_eq!(loads, 4 + 3, "4 S-box + xl/xr/pkey reloads");
    }

    #[test]
    fn o3_has_two_rounds() {
        let p = program(OptLevel::O3);
        let loads = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Lw)
            .count();
        assert_eq!(loads, 8 + 2, "8 S-box + two P-array fetches");
    }
}
