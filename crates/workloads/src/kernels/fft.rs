//! FFT: the fixed-point radix-2 butterfly.
//!
//! `tr = (wr·xr − wi·xi) >> 15; ti = (wr·xi + wi·xr) >> 15;`
//! `y0 = u + t; y1 = u − t` on both components.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

struct Twiddle {
    wr: Operand,
    wi: Operand,
}

/// One butterfly on `(ur, ui)` and `(xr, xi)`; outputs are marked live-out.
fn butterfly(
    b: &mut BlockBuilder,
    w: &Twiddle,
    ur: Operand,
    ui: Operand,
    xr: Operand,
    xi: Operand,
) {
    let m1 = b.op(Mult, w.wr, xr);
    let m2 = b.op(Mult, w.wi, xi);
    let m3 = b.op(Mult, w.wr, xi);
    let m4 = b.op(Mult, w.wi, xr);
    let tr_w = b.op(Sub, m1, m2);
    let ti_w = b.op(Add, m3, m4);
    let tr = b.op(Sra, tr_w, b.imm(15));
    let ti = b.op(Sra, ti_w, b.imm(15));
    let y0r = b.op(Add, ur, tr);
    let y0i = b.op(Add, ui, ti);
    let y1r = b.op(Sub, ur, tr);
    let y1i = b.op(Sub, ui, ti);
    for v in [y0r, y0i, y1r, y1i] {
        b.out(v);
    }
}

fn hot_o0() -> BasicBlock {
    // One butterfly; every input reloaded from memory, tr/ti spilled.
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let pu = b.live();
    let px = b.live();
    let wr = {
        let a = b.op(Addiu, frame, b.imm(16));
        b.load(a)
    };
    let wi = {
        let a = b.op(Addiu, frame, b.imm(20));
        b.load(a)
    };
    let ur = b.load(pu);
    let ui = {
        let a = b.op(Addiu, pu, b.imm(4));
        b.load(a)
    };
    let xr = b.load(px);
    let xi = {
        let a = b.op(Addiu, px, b.imm(4));
        b.load(a)
    };
    let m1 = b.op(Mult, wr, xr);
    let m2 = b.op(Mult, wi, xi);
    let trw = b.op(Sub, m1, m2);
    let tr = b.op(Sra, trw, b.imm(15));
    let tr2 = b.spill_reload(tr, frame, 24);
    let m3 = b.op(Mult, wr, xi);
    let m4 = b.op(Mult, wi, xr);
    let tiw = b.op(Add, m3, m4);
    let ti = b.op(Sra, tiw, b.imm(15));
    let y0r = b.op(Add, ur, tr2);
    let y0i = b.op(Add, ui, ti);
    let y1r = b.op(Sub, ur, tr2);
    let y1i = b.op(Sub, ui, ti);
    b.store(y0r, pu);
    b.store(y0i, px);
    b.out(y1r);
    b.out(y1i);
    BasicBlock::new("fft_butterfly_o0", b.finish(), 160_000)
}

fn hot_o3() -> BasicBlock {
    // Two butterflies sharing the twiddle factors, all in registers.
    let mut b = BlockBuilder::new();
    let w = Twiddle {
        wr: b.live(),
        wi: b.live(),
    };
    let pu = b.live();
    let ur0 = b.load(pu);
    let ui0 = {
        let a = b.op(Addiu, pu, b.imm(4));
        b.load(a)
    };
    let xr0 = {
        let a = b.op(Addiu, pu, b.imm(8));
        b.load(a)
    };
    let xi0 = {
        let a = b.op(Addiu, pu, b.imm(12));
        b.load(a)
    };
    butterfly(&mut b, &w, ur0, ui0, xr0, xi0);
    let ur1 = {
        let a = b.op(Addiu, pu, b.imm(16));
        b.load(a)
    };
    let ui1 = {
        let a = b.op(Addiu, pu, b.imm(20));
        b.load(a)
    };
    let xr1 = {
        let a = b.op(Addiu, pu, b.imm(24));
        b.load(a)
    };
    let xi1 = {
        let a = b.op(Addiu, pu, b.imm(28));
        b.load(a)
    };
    butterfly(&mut b, &w, ur1, ui1, xr1, xi1);
    BasicBlock::new("fft_butterfly_o3", b.finish(), 80_000)
}

/// Builds the FFT program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl) = match opt {
        OptLevel::O0 => (hot_o0(), 160_000),
        OptLevel::O3 => (hot_o3(), 80_000),
    };
    Program::new(
        format!("fft-{opt}"),
        vec![
            hot,
            super::loop_ctrl("fft_stage_ctrl", ctrl),
            super::init_block("fft_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterflies_use_multipliers() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let p = program(opt);
            let mults = p
                .hottest()
                .dfg
                .iter()
                .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Mult)
                .count();
            assert!(mults >= 4, "{opt}: {mults} mults");
        }
    }

    #[test]
    fn o3_has_two_butterflies() {
        let p = program(OptLevel::O3);
        let mults = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Mult)
            .count();
        assert_eq!(mults, 8);
    }
}
