//! bitcount: the SWAR population count.
//!
//! The classic `x −= (x>>1)&0x5555…; x = (x&0x3333…) + ((x>>2)&0x3333…); …`
//! reduction tree — a long dependence chain of shifts/ands/adds, the
//! textbook ISE target.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

/// The SWAR popcount chain on one 32-bit word.
fn popcount(b: &mut BlockBuilder, x: Operand) -> Operand {
    let t1 = b.op(Srl, x, b.imm(1));
    let t2 = b.op(Andi, t1, b.imm(0x5555));
    let x1 = b.op(Subu, x, t2);
    let t3 = b.op(Andi, x1, b.imm(0x3333));
    let t4 = b.op(Srl, x1, b.imm(2));
    let t5 = b.op(Andi, t4, b.imm(0x3333));
    let x2 = b.op(Addu, t3, t5);
    let t6 = b.op(Srl, x2, b.imm(4));
    let t7 = b.op(Addu, x2, t6);
    let x3 = b.op(Andi, t7, b.imm(0x0f0f));
    let t8 = b.op(Srl, x3, b.imm(8));
    let t9 = b.op(Addu, x3, t8);
    let t10 = b.op(Srl, t9, b.imm(16));
    let t11 = b.op(Addu, t9, t10);
    b.op(Andi, t11, b.imm(0x3f))
}

fn hot_o0() -> BasicBlock {
    // One word per iteration, the intermediate x respilled twice.
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let p = b.live();
    let acc0 = {
        let a = b.op(Addiu, frame, b.imm(4));
        b.load(a)
    };
    let x = b.load(p);
    let t1 = b.op(Srl, x, b.imm(1));
    let t2 = b.op(Andi, t1, b.imm(0x5555));
    let x1 = b.op(Subu, x, t2);
    let x1s = b.spill_reload(x1, frame, 8);
    let t3 = b.op(Andi, x1s, b.imm(0x3333));
    let t4 = b.op(Srl, x1s, b.imm(2));
    let t5 = b.op(Andi, t4, b.imm(0x3333));
    let x2 = b.op(Addu, t3, t5);
    let x2s = b.spill_reload(x2, frame, 12);
    let t6 = b.op(Srl, x2s, b.imm(4));
    let t7 = b.op(Addu, x2s, t6);
    let x3 = b.op(Andi, t7, b.imm(0x0f0f));
    let t8 = b.op(Srl, x3, b.imm(8));
    let t9 = b.op(Addu, x3, t8);
    let t10 = b.op(Srl, t9, b.imm(16));
    let t11 = b.op(Addu, t9, t10);
    let cnt = b.op(Andi, t11, b.imm(0x3f));
    let acc = b.op(Addu, acc0, cnt);
    let accaddr = b.op(Addiu, frame, b.imm(4));
    b.store(acc, accaddr);
    let p2 = b.op(Addiu, p, b.imm(4));
    b.out(p2);
    BasicBlock::new("bitcount_word_o0", b.finish(), 500_000)
}

fn hot_o3() -> BasicBlock {
    // Two words per iteration, counts kept in registers.
    let mut b = BlockBuilder::new();
    let p = b.live();
    let acc0 = b.live();
    let x0 = b.load(p);
    let a1 = b.op(Addiu, p, b.imm(4));
    let x1 = b.load(a1);
    let c0 = popcount(&mut b, x0);
    let c1 = popcount(&mut b, x1);
    let s = b.op(Addu, c0, c1);
    let acc = b.op(Addu, acc0, s);
    let p2 = b.op(Addiu, p, b.imm(8));
    b.out(acc);
    b.out(p2);
    BasicBlock::new("bitcount_words_o3", b.finish(), 250_000)
}

/// Builds the bitcount program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl) = match opt {
        OptLevel::O0 => (hot_o0(), 500_000),
        OptLevel::O3 => (hot_o3(), 250_000),
    };
    Program::new(
        format!("bitcount-{opt}"),
        vec![
            hot,
            super::loop_ctrl("bitcount_loop_ctrl", ctrl),
            super::init_block("bitcount_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_deep() {
        let p = program(OptLevel::O3);
        let depth = isex_dfg::analysis::critical_path_len(&p.hottest().dfg);
        assert!(depth >= 15, "SWAR chain is long, got {depth}");
    }

    #[test]
    fn o3_all_ops_alu_or_memory() {
        let p = program(OptLevel::O3);
        for (_, n) in p.hottest().dfg.iter() {
            assert_ne!(n.payload().opcode().class(), isex_isa::OpClass::Branch);
        }
    }
}
