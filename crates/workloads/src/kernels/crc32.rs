//! CRC32: the table-driven per-byte update loop.
//!
//! Hot statement: `crc = (crc >> 8) ^ table[(crc ^ *p++) & 0xff]`.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

/// One table-lookup CRC step; returns the updated crc value.
fn step(b: &mut BlockBuilder, crc: Operand, byte: Operand, table: Operand) -> Operand {
    let x = b.op(Xor, crc, byte);
    let idx = b.op(Andi, x, b.imm(0xff));
    let off = b.op(Sll, idx, b.imm(2));
    let addr = b.op(Addu, table, off);
    let entry = b.load(addr);
    let shifted = b.op(Srl, crc, b.imm(8));
    b.op(Xor, shifted, entry)
}

fn hot_o0() -> BasicBlock {
    // One byte per iteration; crc spilled to the stack frame like
    // unoptimised gcc output.
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let table = b.live();
    let p = b.live();
    let crc0 = {
        let addr = b.op(Addiu, frame, b.imm(8));
        b.load(addr)
    };
    let byte = b.load(p);
    let crc1 = step(&mut b, crc0, byte, table);
    let crc1s = b.spill_reload(crc1, frame, 8);
    let p2 = b.op(Addiu, p, b.imm(1));
    b.out(crc1s);
    b.out(p2);
    BasicBlock::new("crc32_byte_o0", b.finish(), 1 << 20)
}

fn hot_o3() -> BasicBlock {
    // gcc -O3 keeps crc in a register and unrolls 4 bytes of one word.
    let mut b = BlockBuilder::new();
    let table = b.live();
    let p = b.live();
    let mut crc = b.live();
    let word = b.load(p);
    for i in 0..4 {
        let byte = if i == 0 {
            word
        } else {
            b.op(Srl, word, b.imm(8 * i))
        };
        crc = step(&mut b, crc, byte, table);
    }
    let p2 = b.op(Addiu, p, b.imm(4));
    b.out(crc);
    b.out(p2);
    BasicBlock::new("crc32_word_o3", b.finish(), 1 << 18)
}

/// Builds the CRC32 program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl_count) = match opt {
        OptLevel::O0 => (hot_o0(), 1u64 << 20),
        OptLevel::O3 => (hot_o3(), 1u64 << 18),
    };
    Program::new(
        format!("crc32-{opt}"),
        vec![
            hot,
            super::loop_ctrl("crc32_loop_ctrl", ctrl_count),
            super::init_block("crc32_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o3_unrolls_four_steps() {
        let p = program(OptLevel::O3);
        let hot = p.hottest();
        let loads = hot
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Lw)
            .count();
        assert_eq!(loads, 5, "1 word fetch + 4 table lookups");
    }

    #[test]
    fn o0_spills_crc() {
        let p = program(OptLevel::O0);
        let stores = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Sw)
            .count();
        assert!(stores >= 1);
    }
}
