//! JPEG: the forward-DCT row butterfly (even part) with fixed-point
//! constant multiplies and descaling shifts.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

/// Loads `row[idx]` given the row base pointer.
fn elem(b: &mut BlockBuilder, row: Operand, idx: i64) -> Operand {
    if idx == 0 {
        b.load(row)
    } else {
        let a = b.op(Addiu, row, b.imm(4 * idx));
        b.load(a)
    }
}

/// The even-part butterfly on 8 loaded samples; emits 4 outputs.
fn even_part(b: &mut BlockBuilder, x: &[Operand; 8]) -> [Operand; 4] {
    let tmp0 = b.op(Add, x[0], x[7]);
    let tmp7 = b.op(Sub, x[0], x[7]);
    let tmp1 = b.op(Add, x[1], x[6]);
    let tmp6 = b.op(Sub, x[1], x[6]);
    let tmp2 = b.op(Add, x[2], x[5]);
    let _tmp5 = b.op(Sub, x[2], x[5]);
    let tmp3 = b.op(Add, x[3], x[4]);
    let _tmp4 = b.op(Sub, x[3], x[4]);
    let tmp10 = b.op(Add, tmp0, tmp3);
    let tmp13 = b.op(Sub, tmp0, tmp3);
    let tmp11 = b.op(Add, tmp1, tmp2);
    let tmp12 = b.op(Sub, tmp1, tmp2);
    let s04 = b.op(Add, tmp10, tmp11);
    let d04 = b.op(Sub, tmp10, tmp11);
    let out0 = b.op(Sll, s04, b.imm(2));
    let out4 = b.op(Sll, d04, b.imm(2));
    // z1 = (tmp12 + tmp13) * FIX_0_541196100
    let zsum = b.op(Add, tmp12, tmp13);
    let z1 = b.op(Mult, zsum, b.imm(4433));
    let m13 = b.op(Mult, tmp13, b.imm(6270));
    let a2 = b.op(Add, z1, m13);
    let out2 = b.op(Sra, a2, b.imm(11));
    let m12 = b.op(Mult, tmp12, b.imm(15137));
    let s6 = b.op(Sub, z1, m12);
    let out6 = b.op(Sra, s6, b.imm(11));
    // keep the odd-part seeds alive
    b.out(tmp6);
    b.out(tmp7);
    [out0, out2, out4, out6]
}

fn hot_o0() -> BasicBlock {
    // Half a row (4 samples) with spilled temporaries.
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let row = b.live();
    let x0 = elem(&mut b, row, 0);
    let x7 = elem(&mut b, row, 7);
    let x3 = elem(&mut b, row, 3);
    let x4 = elem(&mut b, row, 4);
    let tmp0 = b.op(Add, x0, x7);
    let tmp0s = b.spill_reload(tmp0, frame, 0);
    let tmp3 = b.op(Add, x3, x4);
    let tmp3s = b.spill_reload(tmp3, frame, 4);
    let tmp10 = b.op(Add, tmp0s, tmp3s);
    let tmp13 = b.op(Sub, tmp0s, tmp3s);
    let m = b.op(Mult, tmp13, b.imm(6270));
    let o = b.op(Sra, m, b.imm(11));
    b.store(tmp10, row);
    let a = b.op(Addiu, row, b.imm(8));
    b.store(o, a);
    b.out(tmp13);
    BasicBlock::new("jpeg_fdct_half_o0", b.finish(), 120_000)
}

fn hot_o3() -> BasicBlock {
    // A full 8-sample row, register-resident.
    let mut b = BlockBuilder::new();
    let row = b.live();
    let xs: Vec<Operand> = (0..8).map(|i| elem(&mut b, row, i)).collect();
    let x: [Operand; 8] = xs.try_into().expect("eight samples");
    let outs = even_part(&mut b, &x);
    for (i, o) in outs.into_iter().enumerate() {
        let a = b.op(Addiu, row, b.imm(4 * (i as i64 * 2)));
        b.store(o, a);
    }
    BasicBlock::new("jpeg_fdct_row_o3", b.finish(), 60_000)
}

/// Builds the JPEG program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl) = match opt {
        OptLevel::O0 => (hot_o0(), 120_000),
        OptLevel::O3 => (hot_o3(), 60_000),
    };
    Program::new(
        format!("jpeg-{opt}"),
        vec![
            hot,
            super::loop_ctrl("jpeg_row_ctrl", ctrl),
            super::init_block("jpeg_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o3_row_is_wide() {
        let p = program(OptLevel::O3);
        let dfg = &p.hottest().dfg;
        // Plenty of parallel adds/subs: critical path much shorter than size.
        let depth = isex_dfg::analysis::critical_path_len(dfg);
        assert!(dfg.len() as f64 / depth as f64 > 2.0, "wide butterfly");
    }

    #[test]
    fn uses_fixed_point_multiplies() {
        let p = program(OptLevel::O3);
        let mults = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Mult)
            .count();
        assert_eq!(mults, 3);
    }
}
