//! Dijkstra: the branch-free edge-relaxation step.
//!
//! `alt = dist[u] + w(u,v); if (alt < dist[v]) dist[v] = alt;` with the
//! conditional update folded into a mask blend.

use isex_dfg::Operand;
use isex_isa::Opcode::*;

use crate::{BasicBlock, BlockBuilder, OptLevel, Program};

/// Branch-free `min`-style blend: returns `alt < dv ? alt : dv`.
fn blend_min(b: &mut BlockBuilder, alt: Operand, dv: Operand) -> Operand {
    let c = b.op(Sltu, alt, dv);
    let mask = b.op(Sub, b.imm(0), c); // 0 or 0xffffffff
    let take_alt = b.op(And, alt, mask);
    let inv = b.op(Nor, mask, mask);
    let keep_dv = b.op(And, dv, inv);
    b.op(Or, take_alt, keep_dv)
}

/// One relaxation of edge `(u, v)`; returns the new `dist[v]`.
fn relax(b: &mut BlockBuilder, dist: Operand, du: Operand, edge: Operand) -> Operand {
    let w = b.load(edge);
    let voff = {
        let a = b.op(Addiu, edge, b.imm(4));
        b.load(a)
    };
    let alt = b.op(Addu, du, w);
    let vaddr = {
        let scaled = b.op(Sll, voff, b.imm(2));
        b.op(Addu, dist, scaled)
    };
    let dv = b.load(vaddr);
    let newdv = blend_min(b, alt, dv);
    b.store(newdv, vaddr);
    newdv
}

fn hot_o0() -> BasicBlock {
    let mut b = BlockBuilder::new();
    let frame = b.live();
    let dist = b.live();
    let edge = b.live();
    let du = {
        let a = b.op(Addiu, frame, b.imm(0));
        b.load(a)
    };
    let dus = b.spill_reload(du, frame, 4);
    let nd = relax(&mut b, dist, dus, edge);
    b.out(nd);
    let e2 = b.op(Addiu, edge, b.imm(8));
    b.out(e2);
    BasicBlock::new("dijkstra_relax_o0", b.finish(), 600_000)
}

fn hot_o3() -> BasicBlock {
    // Two edges of u's adjacency list per iteration, du in a register.
    let mut b = BlockBuilder::new();
    let dist = b.live();
    let edge = b.live();
    let du = b.live();
    let n1 = relax(&mut b, dist, du, edge);
    let e2 = b.op(Addiu, edge, b.imm(8));
    let n2 = relax(&mut b, dist, du, e2);
    b.out(n1);
    b.out(n2);
    let e3 = b.op(Addiu, edge, b.imm(16));
    b.out(e3);
    BasicBlock::new("dijkstra_relax_o3", b.finish(), 300_000)
}

/// Builds the Dijkstra program model.
pub fn program(opt: OptLevel) -> Program {
    let (hot, ctrl) = match opt {
        OptLevel::O0 => (hot_o0(), 600_000),
        OptLevel::O3 => (hot_o3(), 300_000),
    };
    Program::new(
        format!("dijkstra-{opt}"),
        vec![
            hot,
            super::loop_ctrl("dijkstra_edge_ctrl", ctrl),
            super::init_block("dijkstra_init"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relax_mixes_memory_and_alu() {
        let p = program(OptLevel::O0);
        let dfg = &p.hottest().dfg;
        let mems = dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode().is_memory())
            .count();
        let alus = dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode().class() == isex_isa::OpClass::IntAlu)
            .count();
        assert!(mems >= 5);
        assert!(alus >= 8);
    }

    #[test]
    fn blend_is_branch_free() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let p = program(opt);
            for (_, n) in p.hottest().dfg.iter() {
                assert_ne!(n.payload().opcode().class(), isex_isa::OpClass::Branch);
            }
        }
    }
}
