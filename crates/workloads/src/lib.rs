//! Exploration workloads: synthetic MiBench-like kernels and random DFGs.
//!
//! The paper evaluates on seven benchmarks "including CRC32, FFT, adpcm,
//! bitcount, blowfish, jpeg and dijkstra … compiled by gcc 2.7.2.3 for PISA
//! with -O0 and -O3" (§5.1). We cannot ship gcc-compiled PISA binaries, so
//! this crate provides the closest synthetic equivalent: the *hot inner
//! loop* of each benchmark hand-lowered to the PISA-like IR of
//! [`isex_isa`], in two fidelities:
//!
//! * [`OptLevel::O0`] — naive code: every intermediate value spills to the
//!   stack (load/store pairs), no unrolling, small basic blocks;
//! * [`OptLevel::O3`] — register-promoted, unrolled code: larger basic
//!   blocks with more instruction-level parallelism, mirroring the paper's
//!   observation that "O3 … increases the size of basic blocks".
//!
//! Each [`Program`] carries per-block execution counts with a hot-block
//! dominated profile, which is what the design flow's profiling stage
//! consumes. The [`random`] module generates layered random DAGs for
//! property tests and for the complexity benches of §4.4.
//!
//! # Example
//!
//! ```
//! use isex_workloads::{Benchmark, OptLevel};
//!
//! let prog = Benchmark::Crc32.program(OptLevel::O3);
//! assert_eq!(prog.name, "crc32-O3");
//! assert!(prog.hottest().exec_count > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod kernels;
mod program;

pub mod extra;

pub mod random;
pub mod registry;

pub use builder::BlockBuilder;
pub use program::{BasicBlock, Program};

use serde::{Deserialize, Serialize};

/// Compiler optimisation fidelity of a kernel (§5.1: gcc `-O0` vs `-O3`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OptLevel {
    /// Naive, spill-heavy, non-unrolled code.
    O0,
    /// Register-promoted, unrolled code.
    O3,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "O0",
            OptLevel::O3 => "O3",
        })
    }
}

/// The seven benchmarks of the paper's evaluation (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Crc32,
    Fft,
    Adpcm,
    Bitcount,
    Blowfish,
    Jpeg,
    Dijkstra,
}

impl Benchmark {
    /// All seven, in the paper's order.
    pub const ALL: &'static [Benchmark] = &[
        Benchmark::Crc32,
        Benchmark::Fft,
        Benchmark::Adpcm,
        Benchmark::Bitcount,
        Benchmark::Blowfish,
        Benchmark::Jpeg,
        Benchmark::Dijkstra,
    ];

    /// The benchmark's short name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Crc32 => "crc32",
            Benchmark::Fft => "fft",
            Benchmark::Adpcm => "adpcm",
            Benchmark::Bitcount => "bitcount",
            Benchmark::Blowfish => "blowfish",
            Benchmark::Jpeg => "jpeg",
            Benchmark::Dijkstra => "dijkstra",
        }
    }

    /// Builds the benchmark's program model at the given fidelity.
    pub fn program(self, opt: OptLevel) -> Program {
        match self {
            Benchmark::Crc32 => kernels::crc32::program(opt),
            Benchmark::Fft => kernels::fft::program(opt),
            Benchmark::Adpcm => kernels::adpcm::program(opt),
            Benchmark::Bitcount => kernels::bitcount::program(opt),
            Benchmark::Blowfish => kernels::blowfish::program(opt),
            Benchmark::Jpeg => kernels::jpeg::program(opt),
            Benchmark::Dijkstra => kernels::dijkstra::program(opt),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_builds_at_both_levels() {
        for &b in Benchmark::ALL {
            for opt in [OptLevel::O0, OptLevel::O3] {
                let p = b.program(opt);
                assert!(!p.blocks.is_empty(), "{b} {opt}");
                assert!(p.total_count() > 0);
                for blk in &p.blocks {
                    assert!(!blk.dfg.is_empty(), "{b} {opt} block {}", blk.name);
                }
            }
        }
    }

    #[test]
    fn o3_blocks_are_bigger_than_o0() {
        for &b in Benchmark::ALL {
            let o0 = b.program(OptLevel::O0).hottest().dfg.len();
            let o3 = b.program(OptLevel::O3).hottest().dfg.len();
            assert!(
                o3 > o0,
                "{b}: O3 hot block ({o3} ops) should beat O0 ({o0} ops)"
            );
        }
    }

    #[test]
    fn hot_block_dominates_profile() {
        // Domination in executed *work* (ops × count), the quantity the
        // flow's execution-time accounting weights by.
        for &b in Benchmark::ALL {
            let p = b.program(OptLevel::O3);
            let hot = p.hottest();
            let work = |blk: &crate::BasicBlock| blk.exec_count as f64 * blk.dfg.len() as f64;
            let total: f64 = p.blocks.iter().map(work).sum();
            assert!(
                work(hot) >= 0.6 * total,
                "{b}: profile must be hot-block dominated"
            );
        }
    }

    #[test]
    fn kernels_contain_ise_eligible_work() {
        for &b in Benchmark::ALL {
            let p = b.program(OptLevel::O3);
            let eligible = p
                .hottest()
                .dfg
                .iter()
                .filter(|(_, n)| n.payload().is_ise_eligible())
                .count();
            assert!(eligible >= 4, "{b}: hot block needs explorable ops");
        }
    }
}
