//! A terse builder for writing kernels as straight-line code.

use isex_dfg::Operand;
use isex_isa::{Opcode, Operation, ProgramDfg};

/// Builds one basic block's DFG in an assignment style: every helper
/// returns the [`Operand`] carrying the result, so kernels read like
/// three-address code.
///
/// # Example
///
/// ```
/// use isex_workloads::BlockBuilder;
/// use isex_isa::Opcode;
///
/// let mut b = BlockBuilder::new();
/// let x = b.live();
/// let y = b.live();
/// let s = b.op(Opcode::Add, x, y);
/// let t = b.op(Opcode::Sll, s, b.imm(2));
/// b.out(t);
/// let dfg = b.finish();
/// assert_eq!(dfg.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct BlockBuilder {
    dfg: ProgramDfg,
}

impl BlockBuilder {
    /// Creates an empty block.
    pub fn new() -> Self {
        BlockBuilder {
            dfg: ProgramDfg::new(),
        }
    }

    /// Declares a live-in value (a register defined outside the block).
    pub fn live(&mut self) -> Operand {
        Operand::LiveIn(self.dfg.live_in())
    }

    /// An immediate constant operand.
    pub fn imm(&self, value: i64) -> Operand {
        Operand::Const(value)
    }

    /// Emits a two-operand operation and returns its result.
    pub fn op(&mut self, opcode: Opcode, a: Operand, b: Operand) -> Operand {
        Operand::Node(self.dfg.add_node(Operation::new(opcode), vec![a, b]))
    }

    /// Emits a one-operand operation and returns its result.
    pub fn op1(&mut self, opcode: Opcode, a: Operand) -> Operand {
        Operand::Node(self.dfg.add_node(Operation::new(opcode), vec![a]))
    }

    /// Emits a load from `addr` and returns the loaded value.
    pub fn load(&mut self, addr: Operand) -> Operand {
        Operand::Node(self.dfg.add_node(Operation::new(Opcode::Lw), vec![addr]))
    }

    /// Emits a store of `value` to `addr`.
    pub fn store(&mut self, value: Operand, addr: Operand) {
        self.dfg
            .add_node(Operation::new(Opcode::Sw), vec![value, addr]);
    }

    /// Spills `value` to the stack and reloads it — the `-O0` pattern that
    /// breaks large expressions into memory round-trips.
    pub fn spill_reload(&mut self, value: Operand, frame: Operand, slot: i64) -> Operand {
        let addr = self.op(Opcode::Addiu, frame, Operand::Const(slot));
        self.store(value, addr);
        let addr2 = self.op(Opcode::Addiu, frame, Operand::Const(slot));
        self.load(addr2)
    }

    /// Marks `value` as live out of the block.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not the result of an operation of this block.
    pub fn out(&mut self, value: Operand) {
        match value {
            Operand::Node(n) => self.dfg.set_live_out(n, true),
            other => panic!("only operation results can be live-out, got {other:?}"),
        }
    }

    /// Number of operations emitted so far.
    pub fn len(&self) -> usize {
        self.dfg.len()
    }

    /// Returns `true` if nothing was emitted yet.
    pub fn is_empty(&self) -> bool {
        self.dfg.is_empty()
    }

    /// Finishes the block and returns its DFG.
    pub fn finish(self) -> ProgramDfg {
        self.dfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isex_dfg::NodeId;

    #[test]
    fn builder_wires_dependences() {
        let mut b = BlockBuilder::new();
        let x = b.live();
        let s = b.op(Opcode::Add, x, b.imm(1));
        let t = b.op1(Opcode::Nor, s);
        b.out(t);
        let dfg = b.finish();
        assert_eq!(dfg.len(), 2);
        assert_eq!(dfg.preds(NodeId::new(1)).count(), 1);
        assert!(dfg.node(NodeId::new(1)).is_live_out());
    }

    #[test]
    fn spill_reload_emits_memory_traffic() {
        let mut b = BlockBuilder::new();
        let frame = b.live();
        let x = b.live();
        let v = b.op(Opcode::Add, x, b.imm(1));
        let r = b.spill_reload(v, frame, 16);
        let w = b.op(Opcode::Xor, r, x);
        b.out(w);
        let dfg = b.finish();
        // add, addiu, sw, addiu, lw, xor
        assert_eq!(dfg.len(), 6);
        let mems = dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode().is_memory())
            .count();
        assert_eq!(mems, 2);
    }

    #[test]
    #[should_panic(expected = "live-out")]
    fn live_out_of_constant_panics() {
        let mut b = BlockBuilder::new();
        let c = b.imm(3);
        b.out(c);
    }
}
