//! Program and profile model.

use isex_isa::ProgramDfg;
use serde::{Deserialize, Serialize};

/// One basic block with its profiled execution count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BasicBlock {
    /// A human-readable label (e.g. `"crc32_loop"`).
    pub name: String,
    /// The block's data-flow graph.
    pub dfg: ProgramDfg,
    /// How many times the block executes in the profiled run.
    pub exec_count: u64,
}

impl BasicBlock {
    /// Creates a block.
    pub fn new(name: impl Into<String>, dfg: ProgramDfg, exec_count: u64) -> Self {
        BasicBlock {
            name: name.into(),
            dfg,
            exec_count,
        }
    }
}

/// A profiled program: a bag of basic blocks with execution counts.
///
/// Control flow between blocks is irrelevant to ISE exploration (the paper
/// explores within basic blocks); only the counts matter, for weighting
/// execution time and for hot-block selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    /// Program name, e.g. `"crc32-O3"`.
    pub name: String,
    /// The blocks, in no particular order.
    pub blocks: Vec<BasicBlock>,
}

impl Program {
    /// Creates a program.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(name: impl Into<String>, blocks: Vec<BasicBlock>) -> Self {
        assert!(!blocks.is_empty(), "a program needs at least one block");
        Program {
            name: name.into(),
            blocks,
        }
    }

    /// Total profiled block executions.
    pub fn total_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.exec_count).sum()
    }

    /// The most frequently executed block; insertion order breaks ties
    /// (kernels list their hot block first).
    ///
    /// # Panics
    ///
    /// Never — construction guarantees at least one block.
    pub fn hottest(&self) -> &BasicBlock {
        self.by_heat()[0]
    }

    /// Blocks sorted hottest-first (stable: insertion order breaks ties).
    pub fn by_heat(&self) -> Vec<&BasicBlock> {
        let mut v: Vec<&BasicBlock> = self.blocks.iter().collect();
        v.sort_by_key(|b| std::cmp::Reverse(b.exec_count));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(name: &str, n: usize, count: u64) -> BasicBlock {
        let mut b = crate::BlockBuilder::new();
        let x = b.live();
        let mut v = x;
        for _ in 0..n {
            v = b.op(isex_isa::Opcode::Add, v, b.imm(1));
        }
        b.out(v);
        BasicBlock::new(name, b.finish(), count)
    }

    #[test]
    fn heat_ordering() {
        let p = Program::new(
            "t",
            vec![
                block("cold", 2, 10),
                block("hot", 3, 1000),
                block("warm", 2, 100),
            ],
        );
        assert_eq!(p.hottest().name, "hot");
        let names: Vec<&str> = p.by_heat().iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["hot", "warm", "cold"]);
        assert_eq!(p.total_count(), 1110);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_program_rejected() {
        Program::new("x", vec![]);
    }
}
