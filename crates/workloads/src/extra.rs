//! Extra workloads beyond the paper's seven benchmarks, written as
//! assembly text and built through [`isex_isa::parse`] — dogfooding the
//! textual front-end with realistic kernels.
//!
//! These are *extensions*: the paper's figures use only
//! [`Benchmark`](crate::Benchmark); these kernels widen the test surface
//! (rotate-heavy crypto, byte-sliced table code) and give the examples
//! more varied material.

use isex_isa::parse::parse_block;

use crate::{BasicBlock, OptLevel, Program};

/// A SHA-256-style message-schedule step: `σ0(w15) + σ1(w2) + w16 + w7`,
/// with the rotates expanded to shift/or pairs (PISA has no rotate).
fn sha_schedule_asm() -> &'static str {
    // sigma0 = (w >>> 7) ^ (w >>> 18) ^ (w >> 3)
    "srl  $t0, $a0, 7\n\
     sll  $t1, $a0, 25\n\
     or   $t2, $t0, $t1\n\
     srl  $t3, $a0, 18\n\
     sll  $t4, $a0, 14\n\
     or   $t5, $t3, $t4\n\
     xor  $t6, $t2, $t5\n\
     srl  $t7, $a0, 3\n\
     xor  $s0, $t6, $t7\n\
     # sigma1 = (w >>> 17) ^ (w >>> 19) ^ (w >> 10)\n\
     srl  $t0, $a1, 17\n\
     sll  $t1, $a1, 15\n\
     or   $t2, $t0, $t1\n\
     srl  $t3, $a1, 19\n\
     sll  $t4, $a1, 13\n\
     or   $t5, $t3, $t4\n\
     xor  $t6, $t2, $t5\n\
     srl  $t7, $a1, 10\n\
     xor  $s1, $t6, $t7\n\
     addu $t8, $s0, $s1\n\
     addu $t9, $t8, $a2\n\
     addu $v0, $t9, $a3\n"
}

/// An AES-like byte-sliced table round quarter: four T-table lookups
/// combined with xors.
fn aes_quarter_asm() -> &'static str {
    "srl  $t0, $a0, 24\n\
     sll  $t1, $t0, 2\n\
     addu $t2, $a2, $t1\n\
     lw   $t3, ($t2)\n\
     srl  $t4, $a1, 16\n\
     andi $t5, $t4, 0xff\n\
     sll  $t6, $t5, 2\n\
     addu $t7, $a3, $t6\n\
     lw   $t8, ($t7)\n\
     xor  $t9, $t3, $t8\n\
     xor  $v0, $t9, $a0\n"
}

/// Builds the SHA-like program model.
///
/// # Panics
///
/// Never in practice: the embedded assembly is covered by tests.
pub fn sha_schedule(opt: OptLevel) -> Program {
    let dfg = parse_block(sha_schedule_asm()).expect("embedded kernel parses");
    let count = match opt {
        OptLevel::O0 => 64_000,
        OptLevel::O3 => 64_000,
    };
    Program::new(
        format!("sha-schedule-{opt}"),
        vec![
            BasicBlock::new("sha_w_step", dfg, count),
            super::kernels::loop_ctrl_pub("sha_loop_ctrl", count),
        ],
    )
}

/// Builds the AES-like program model.
///
/// # Panics
///
/// Never in practice: the embedded assembly is covered by tests.
pub fn aes_quarter(opt: OptLevel) -> Program {
    let dfg = parse_block(aes_quarter_asm()).expect("embedded kernel parses");
    let count = match opt {
        OptLevel::O0 => 200_000,
        OptLevel::O3 => 200_000,
    };
    Program::new(
        format!("aes-quarter-{opt}"),
        vec![
            BasicBlock::new("aes_round_quarter", dfg, count),
            super::kernels::loop_ctrl_pub("aes_loop_ctrl", count),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_kernels_parse_and_are_explorable() {
        for p in [sha_schedule(OptLevel::O3), aes_quarter(OptLevel::O3)] {
            let hot = p.hottest();
            assert!(hot.dfg.len() >= 10, "{}", p.name);
            let eligible = hot
                .dfg
                .iter()
                .filter(|(_, n)| n.payload().is_ise_eligible())
                .count();
            assert!(eligible >= 8, "{}: {eligible} eligible ops", p.name);
        }
    }

    #[test]
    fn sha_kernel_is_rotate_shaped() {
        let p = sha_schedule(OptLevel::O3);
        let shifts = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| {
                matches!(
                    n.payload().opcode(),
                    isex_isa::Opcode::Srl | isex_isa::Opcode::Sll
                )
            })
            .count();
        // Four rotates expand to srl+sll pairs; the two σ plain shifts add
        // one srl each: 4 × 2 + 2 = 10.
        assert_eq!(shifts, 10);
    }

    #[test]
    fn aes_kernel_has_table_lookups() {
        let p = aes_quarter(OptLevel::O3);
        let loads = p
            .hottest()
            .dfg
            .iter()
            .filter(|(_, n)| n.payload().opcode() == isex_isa::Opcode::Lw)
            .count();
        assert_eq!(loads, 2);
    }
}
