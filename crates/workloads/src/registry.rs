//! The central named-benchmark registry.
//!
//! Every front-end that accepts a benchmark *name* — the `isex` CLI's
//! `--bench`, the `isexd` server's `"bench"` request field, the
//! `headline`/`ablation` harness binaries — resolves it here, so all of
//! them agree on the valid names and produce the same "unknown name"
//! message, which always lists the alternatives.

use crate::Benchmark;

/// All valid benchmark names, in the paper's order.
pub fn names() -> Vec<&'static str> {
    Benchmark::ALL.iter().map(|b| b.name()).collect()
}

/// Error for a name no benchmark answers to. Its display lists every
/// valid name so the caller's user can self-correct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBenchmark {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown benchmark `{}` (valid: {})",
            self.name,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownBenchmark {}

/// Resolves a benchmark by name (case-insensitive).
pub fn resolve(name: &str) -> Result<Benchmark, UnknownBenchmark> {
    Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| UnknownBenchmark {
            name: name.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in names() {
            assert_eq!(resolve(name).unwrap().name(), name);
        }
    }

    #[test]
    fn resolution_is_case_insensitive() {
        assert_eq!(resolve("CRC32").unwrap(), Benchmark::Crc32);
    }

    #[test]
    fn unknown_name_error_lists_the_valid_names() {
        let err = resolve("quicksort").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`quicksort`"), "{msg}");
        for name in names() {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }
}
