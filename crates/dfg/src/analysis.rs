//! Reachability and connectivity analyses over a [`Dfg`].
//!
//! The exploration algorithm needs three structural queries again and again:
//!
//! * *descendants / ancestors* of a node — Hardware-Grouping walks the
//!   "reachable nodes" of an operation (thesis §4.3), and the convexity test
//!   of §4.2 is a reachability condition;
//! * *connected components inside a node set* — an ISE is "a set of
//!   connected/reachable operations that all use hardware implementation
//!   option" (§4.0), so after convergence the taken-hardware nodes split
//!   into weakly-connected components;
//! * *longest paths* — the unit-latency critical path of a DFG bounds the
//!   schedule length of any machine.
//!
//! All of these are precomputed or answered from dense [`NodeSet`] rows,
//! which keeps the per-iteration cost of the explorer at the `O(k²)` the
//! paper reports (§4.4).

use crate::bitset::NodeSet;
use crate::graph::{Dfg, NodeId};

/// Precomputed transitive reachability of a [`Dfg`].
///
/// For every node the full descendant and ancestor sets are stored as
/// bitsets, so `reaches` and convexity queries are O(k/64) words.
///
/// # Example
///
/// ```
/// use isex_dfg::{Dfg, Operand, Reachability};
///
/// let mut g: Dfg<()> = Dfg::new();
/// let a = g.add_node((), vec![]);
/// let b = g.add_node((), vec![Operand::Node(a)]);
/// let c = g.add_node((), vec![Operand::Node(b)]);
/// let r = Reachability::compute(&g);
/// assert!(r.reaches(a, c));
/// assert!(!r.reaches(c, a));
/// ```
#[derive(Clone, Debug)]
pub struct Reachability {
    descendants: Vec<NodeSet>,
    ancestors: Vec<NodeSet>,
    universe: usize,
}

impl Reachability {
    /// Computes reachability for `dfg` in `O(k² / 64)` words of work.
    pub fn compute<N>(dfg: &Dfg<N>) -> Self {
        let k = dfg.len();
        let mut descendants = vec![NodeSet::new(k); k];
        // Insertion order is topological; walk in reverse so successors are
        // already complete.
        for u in (0..k).rev() {
            let uid = NodeId::new(u as u32);
            let mut row = NodeSet::new(k);
            for s in dfg.succs(uid) {
                row.insert(s);
                row.union_with(&descendants[s.index()]);
            }
            descendants[u] = row;
        }
        let mut ancestors = vec![NodeSet::new(k); k];
        for u in 0..k {
            let uid = NodeId::new(u as u32);
            let mut row = NodeSet::new(k);
            for p in dfg.preds(uid) {
                row.insert(p);
                row.union_with(&ancestors[p.index()]);
            }
            ancestors[u] = row;
        }
        Reachability {
            descendants,
            ancestors,
            universe: k,
        }
    }

    /// Number of nodes of the graph this analysis was computed for.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// All strict descendants of `id` (nodes reachable from `id`).
    pub fn descendants(&self, id: NodeId) -> &NodeSet {
        &self.descendants[id.index()]
    }

    /// All strict ancestors of `id` (nodes that reach `id`).
    pub fn ancestors(&self, id: NodeId) -> &NodeSet {
        &self.ancestors[id.index()]
    }

    /// Returns `true` if there is a (possibly multi-edge) path `from → to`.
    /// A node does not reach itself.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.descendants[from.index()].contains(to)
    }

    /// Union of the strict descendants of every node in `set`.
    pub fn descendants_of_set(&self, set: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new(self.universe);
        for n in set {
            out.union_with(&self.descendants[n.index()]);
        }
        out
    }

    /// Union of the strict ancestors of every node in `set`.
    pub fn ancestors_of_set(&self, set: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new(self.universe);
        for n in set {
            out.union_with(&self.ancestors[n.index()]);
        }
        out
    }
}

/// Splits `set` into weakly-connected components (edges taken as
/// undirected, restricted to nodes inside `set`).
///
/// This is how raw "taken hardware" node sets become individual ISE
/// candidates (§4.0: an ISE is a set of *connected* operations using the
/// hardware implementation option).
///
/// # Example
///
/// ```
/// use isex_dfg::{analysis, Dfg, NodeSet, Operand};
///
/// let mut g: Dfg<()> = Dfg::new();
/// let a = g.add_node((), vec![]);
/// let b = g.add_node((), vec![Operand::Node(a)]);
/// let c = g.add_node((), vec![]); // isolated from a,b
/// let mut s = NodeSet::new(g.len());
/// s.insert(a);
/// s.insert(b);
/// s.insert(c);
/// let comps = analysis::components_within(&g, &s);
/// assert_eq!(comps.len(), 2);
/// ```
pub fn components_within<N>(dfg: &Dfg<N>, set: &NodeSet) -> Vec<NodeSet> {
    let mut seen = NodeSet::new(set.universe());
    let mut comps = Vec::new();
    for start in set {
        if seen.contains(start) {
            continue;
        }
        let mut comp = NodeSet::new(set.universe());
        let mut stack = vec![start];
        comp.insert(start);
        seen.insert(start);
        while let Some(u) = stack.pop() {
            for v in dfg.preds(u).chain(dfg.succs(u)) {
                if set.contains(v) && !seen.contains(v) {
                    seen.insert(v);
                    comp.insert(v);
                    stack.push(v);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

/// Longest path length (in edges) ending at each node, assuming unit node
/// latency. `depth[n] + 1` is the earliest cycle (1-based) node `n` can
/// execute on an infinitely wide machine.
pub fn depths<N>(dfg: &Dfg<N>) -> Vec<usize> {
    let mut depth = vec![0usize; dfg.len()];
    for (id, _) in dfg.iter() {
        let d = dfg
            .preds(id)
            .map(|p| depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        depth[id.index()] = d;
    }
    depth
}

/// Longest path length (in edges) from each node to any sink, assuming unit
/// node latency (the node's *height*).
pub fn heights<N>(dfg: &Dfg<N>) -> Vec<usize> {
    let mut height = vec![0usize; dfg.len()];
    for u in (0..dfg.len()).rev() {
        let uid = NodeId::new(u as u32);
        let h = dfg
            .succs(uid)
            .map(|s| height[s.index()] + 1)
            .max()
            .unwrap_or(0);
        height[u] = h;
    }
    height
}

/// Longest weighted path confined to `set`, where each node contributes
/// `weight(n)` and edges are free. Returns `0.0` for an empty set.
///
/// This is how the combinational delay of an ISE candidate is computed: the
/// execution time of a virtual subgraph "is the critical path time in
/// `vS_x`" (§4.3, Hardware-Grouping), with `weight` returning the chosen
/// hardware option's delay in nanoseconds.
///
/// # Example
///
/// ```
/// use isex_dfg::{analysis, Dfg, NodeSet, Operand};
///
/// let mut g: Dfg<f64> = Dfg::new();
/// let a = g.add_node(2.0, vec![]);
/// let b = g.add_node(3.0, vec![Operand::Node(a)]);
/// let c = g.add_node(1.0, vec![Operand::Node(a)]);
/// let mut s = NodeSet::full(3);
/// let d = analysis::weighted_longest_path_within(&g, &s, |_, w| *w);
/// assert_eq!(d, 5.0); // a -> b
/// s.remove(b);
/// assert_eq!(analysis::weighted_longest_path_within(&g, &s, |_, w| *w), 3.0); // a -> c
/// ```
pub fn weighted_longest_path_within<N>(
    dfg: &Dfg<N>,
    set: &NodeSet,
    mut weight: impl FnMut(NodeId, &N) -> f64,
) -> f64 {
    let mut finish = vec![0.0f64; dfg.len()];
    let mut best = 0.0f64;
    for (id, node) in dfg.iter() {
        if !set.contains(id) {
            continue;
        }
        let start = dfg
            .preds(id)
            .filter(|p| set.contains(*p))
            .map(|p| finish[p.index()])
            .fold(0.0f64, f64::max);
        let f = start + weight(id, node.payload());
        finish[id.index()] = f;
        best = best.max(f);
    }
    best
}

/// The unit-latency critical-path length of the whole DFG in *cycles*
/// (nodes on the longest dependence chain). This is the execution-time
/// lower bound for any issue width (§1.3: "even if the issue width and
/// hardware resources are infinite, this DFG still spends at least four
/// cycles").
pub fn critical_path_len<N>(dfg: &Dfg<N>) -> usize {
    depths(dfg).iter().map(|d| d + 1).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Operand;

    /// The 9-operation example DFG of thesis Fig. 4.0.1.
    fn fig_4_0_1() -> (Dfg<u32>, Vec<NodeId>) {
        let mut g: Dfg<u32> = Dfg::new();
        let li: Vec<_> = (0..4).map(|_| g.live_in()).collect();
        // Paper numbering 1..=9; ours 0..=8.
        let n1 = g.add_node(1, vec![Operand::LiveIn(li[0])]);
        let n2 = g.add_node(2, vec![Operand::LiveIn(li[1])]);
        let n3 = g.add_node(3, vec![Operand::LiveIn(li[2])]);
        let n4 = g.add_node(4, vec![Operand::Node(n1)]);
        let n5 = g.add_node(5, vec![Operand::Node(n2), Operand::Node(n3)]);
        let n6 = g.add_node(6, vec![Operand::Node(n4)]);
        let n7 = g.add_node(7, vec![Operand::Node(n4)]);
        let n8 = g.add_node(8, vec![Operand::Node(n6), Operand::Node(n7)]);
        let n9 = g.add_node(9, vec![Operand::Node(n5), Operand::LiveIn(li[3])]);
        g.set_live_out(n8, true);
        g.set_live_out(n9, true);
        (g, vec![n1, n2, n3, n4, n5, n6, n7, n8, n9])
    }

    #[test]
    fn reachability_on_paper_example() {
        let (g, n) = fig_4_0_1();
        let r = Reachability::compute(&g);
        // 1 -> 4 -> {6,7} -> 8
        assert!(r.reaches(n[0], n[7]));
        assert!(r.reaches(n[3], n[5]));
        assert!(!r.reaches(n[7], n[0]));
        // 2 and 3 only reach 5 and 9
        assert_eq!(
            r.descendants(n[1]).iter().collect::<Vec<_>>(),
            vec![n[4], n[8]]
        );
        // ancestors of 8 are {1,4,6,7}
        assert_eq!(
            r.ancestors(n[7]).iter().collect::<Vec<_>>(),
            vec![n[0], n[3], n[5], n[6]]
        );
    }

    #[test]
    fn reachability_matches_naive_dfs() {
        let (g, _) = fig_4_0_1();
        let r = Reachability::compute(&g);
        for u in g.node_ids() {
            // naive DFS
            let mut seen = NodeSet::new(g.len());
            let mut stack: Vec<NodeId> = g.succs(u).collect();
            while let Some(x) = stack.pop() {
                if seen.insert(x) {
                    stack.extend(g.succs(x));
                }
            }
            assert_eq!(&seen, r.descendants(u), "descendants({u:?})");
        }
    }

    #[test]
    fn set_reachability_unions() {
        let (g, n) = fig_4_0_1();
        let r = Reachability::compute(&g);
        let mut s = NodeSet::new(g.len());
        s.insert(n[5]);
        s.insert(n[6]); // nodes 6 and 7
        let d = r.descendants_of_set(&s);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![n[7]]);
        let a = r.ancestors_of_set(&s);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![n[0], n[3]]);
    }

    #[test]
    fn components_split_correctly() {
        let (g, n) = fig_4_0_1();
        // Paper ops {2,3,5} form one component (2→5, 3→5); {6,7,8} another.
        let mut s = NodeSet::new(g.len());
        for i in [5, 6, 7, 2, 4, 1] {
            s.insert(n[i]);
        }
        let mut comps = components_within(&g, &s);
        comps.sort_by_key(|c| c.first().map(|x| x.index()).unwrap_or(usize::MAX));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].iter().collect::<Vec<_>>(), vec![n[1], n[2], n[4]]);
        assert_eq!(comps[1].iter().collect::<Vec<_>>(), vec![n[5], n[6], n[7]]);
    }

    #[test]
    fn depth_height_critical_path() {
        let (g, n) = fig_4_0_1();
        let d = depths(&g);
        let h = heights(&g);
        assert_eq!(d[n[0].index()], 0);
        assert_eq!(d[n[7].index()], 3);
        assert_eq!(h[n[0].index()], 3);
        assert_eq!(h[n[7].index()], 0);
        // Paper §1.3: the example DFG needs at least four cycles.
        assert_eq!(critical_path_len(&g), 4);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g: Dfg<()> = Dfg::new();
        assert_eq!(critical_path_len(&g), 0);
        assert!(depths(&g).is_empty());
        let r = Reachability::compute(&g);
        assert_eq!(r.universe(), 0);
        assert!(components_within(&g, &NodeSet::new(0)).is_empty());
    }
}
