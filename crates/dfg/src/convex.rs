//! Convexity checking and repair for ISE candidate subgraphs.
//!
//! A candidate `S` must be *convex*: no path may leave `S` and re-enter it
//! (§4.2: "if no path exists from an operation `u ∈ S` to another operation
//! `v ∈ S` involving an operation `w ∉ S`, then `S` is convex"). Convexity
//! is what makes the ISE schedulable as a single atomic instruction.
//!
//! [`is_convex`] answers the question with two bitset unions; [`make_convex`]
//! implements the paper's *Make-Convex* step, which "repeatedly divides the
//! ISE candidate that does not conform to the convex constraint into smaller
//! ones until all smaller ISE candidates comply" (§4.3).

use crate::analysis::{components_within, Reachability};
use crate::bitset::NodeSet;
use crate::graph::Dfg;

/// Returns `true` if `set` is convex in the graph `reach` was computed for.
///
/// `S` is non-convex iff some node `w ∉ S` is simultaneously a descendant of
/// a node of `S` and an ancestor of a node of `S` — exactly the nodes on a
/// leave-and-re-enter path.
///
/// # Example
///
/// ```
/// use isex_dfg::{convex, Dfg, NodeSet, Operand, Reachability};
///
/// // chain a -> b -> c: {a, c} is not convex, {a, b} is.
/// let mut g: Dfg<()> = Dfg::new();
/// let a = g.add_node((), vec![]);
/// let b = g.add_node((), vec![Operand::Node(a)]);
/// let c = g.add_node((), vec![Operand::Node(b)]);
/// let r = Reachability::compute(&g);
/// let mut s = NodeSet::new(3);
/// s.insert(a);
/// s.insert(c);
/// assert!(!convex::is_convex(&s, &r));
/// s.remove(c);
/// s.insert(b);
/// assert!(convex::is_convex(&s, &r));
/// ```
pub fn is_convex(set: &NodeSet, reach: &Reachability) -> bool {
    violating_nodes(set, reach).is_empty()
}

/// The set of nodes `w ∉ S` that witness non-convexity (descendant of some
/// node of `S` and ancestor of some node of `S`). Empty iff `S` is convex.
pub fn violating_nodes(set: &NodeSet, reach: &Reachability) -> NodeSet {
    let mut mid = reach.descendants_of_set(set);
    mid.intersect_with(&reach.ancestors_of_set(set));
    mid.difference_with(set);
    mid
}

/// Splits `set` into convex, weakly-connected pieces (the paper's
/// *Make-Convex*).
///
/// If `set` is already convex it is returned (split only into its connected
/// components). Otherwise the set is cut around a violating external node
/// `w`: the members that are ancestors of `w` are separated from the rest,
/// and both halves are processed recursively. The result is a partition of
/// `set` into convex connected subgraphs; no node is dropped.
///
/// # Example
///
/// ```
/// use isex_dfg::{convex, Dfg, NodeSet, Operand, Reachability};
///
/// let mut g: Dfg<()> = Dfg::new();
/// let a = g.add_node((), vec![]);
/// let b = g.add_node((), vec![Operand::Node(a)]);
/// let c = g.add_node((), vec![Operand::Node(b)]);
/// let r = Reachability::compute(&g);
/// let mut s = NodeSet::new(3);
/// s.insert(a);
/// s.insert(c); // non-convex: path a -> b -> c with b outside
/// let parts = convex::make_convex(&g, &s, &r);
/// assert_eq!(parts.len(), 2);
/// assert!(parts.iter().all(|p| convex::is_convex(p, &r)));
/// ```
pub fn make_convex<N>(dfg: &Dfg<N>, set: &NodeSet, reach: &Reachability) -> Vec<NodeSet> {
    let mut out = Vec::new();
    let mut work = vec![set.clone()];
    while let Some(s) = work.pop() {
        if s.is_empty() {
            continue;
        }
        let viol = violating_nodes(&s, reach);
        match viol.first() {
            None => {
                // Convex; still split into connected components so each
                // piece is a well-formed single ISE candidate.
                out.extend(components_within(dfg, &s));
            }
            Some(w) => {
                // Cut the set at w: members above w go one way, the rest the
                // other. Both halves are strictly smaller than s, so this
                // terminates.
                let above = s.intersection(reach.ancestors(w));
                let below = s.difference(&above);
                debug_assert!(!above.is_empty() && !below.is_empty());
                work.push(above);
                work.push(below);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NodeId, Operand};

    fn chain(n: usize) -> Dfg<usize> {
        let mut g = Dfg::new();
        let mut prev = None;
        for i in 0..n {
            let ops = prev.map(|p| vec![Operand::Node(p)]).unwrap_or_default();
            prev = Some(g.add_node(i, ops));
        }
        g
    }

    #[test]
    fn full_set_is_convex() {
        let g = chain(6);
        let r = Reachability::compute(&g);
        assert!(is_convex(&NodeSet::full(6), &r));
    }

    #[test]
    fn gap_in_chain_is_nonconvex() {
        let g = chain(5);
        let r = Reachability::compute(&g);
        let mut s = NodeSet::new(5);
        s.insert(NodeId::new(0));
        s.insert(NodeId::new(2));
        s.insert(NodeId::new(4));
        let viol = violating_nodes(&s, &r);
        assert_eq!(viol.len(), 2, "nodes 1 and 3 witness the violation");
        assert!(!is_convex(&s, &r));
    }

    #[test]
    fn make_convex_partitions_without_loss() {
        let g = chain(7);
        let r = Reachability::compute(&g);
        let mut s = NodeSet::new(7);
        for i in [0u32, 2, 3, 6] {
            s.insert(NodeId::new(i));
        }
        let parts = make_convex(&g, &s, &r);
        // Every part convex, connected, non-empty.
        let mut total = NodeSet::new(7);
        for p in &parts {
            assert!(is_convex(p, &r));
            assert!(!p.is_empty());
            assert!(!total.intersects(p), "parts are disjoint");
            total.union_with(p);
        }
        assert_eq!(total, s, "no node dropped or invented");
        assert_eq!(parts.len(), 3); // {0}, {2,3}, {6}
    }

    #[test]
    fn diamond_with_one_arm_missing() {
        // a -> b, a -> c, b -> d, c -> d; S = {a, b, d} is non-convex via c.
        let mut g: Dfg<()> = Dfg::new();
        let a = g.add_node((), vec![]);
        let b = g.add_node((), vec![Operand::Node(a)]);
        let c = g.add_node((), vec![Operand::Node(a)]);
        let d = g.add_node((), vec![Operand::Node(b), Operand::Node(c)]);
        let r = Reachability::compute(&g);
        let mut s = NodeSet::new(4);
        s.insert(a);
        s.insert(b);
        s.insert(d);
        assert!(!is_convex(&s, &r));
        assert_eq!(violating_nodes(&s, &r).iter().collect::<Vec<_>>(), vec![c]);
        let parts = make_convex(&g, &s, &r);
        assert!(parts.iter().all(|p| is_convex(p, &r)));
        let total: usize = parts.iter().map(NodeSet::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn already_convex_set_splits_into_components_only() {
        let mut g: Dfg<()> = Dfg::new();
        let a = g.add_node((), vec![]);
        let _b = g.add_node((), vec![Operand::Node(a)]);
        let c = g.add_node((), vec![]);
        let r = Reachability::compute(&g);
        let mut s = NodeSet::new(3);
        s.insert(a);
        s.insert(c);
        // {a, c} convex (no path between them) but disconnected.
        assert!(is_convex(&s, &r));
        let parts = make_convex(&g, &s, &r);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn empty_set_is_convex() {
        let g = chain(3);
        let r = Reachability::compute(&g);
        assert!(is_convex(&NodeSet::new(3), &r));
        assert!(make_convex(&g, &NodeSet::new(3), &r).is_empty());
    }
}
