//! The DFG container: nodes, operands and adjacency.
//!
//! A [`Dfg`] models the data-flow graph of one basic block. Nodes are added
//! in a topological order by construction — an operand may only reference a
//! node that already exists — so the graph is acyclic by construction and
//! `0..len` is always a valid topological order.

use serde::{Deserialize, Serialize};

/// Index of an operation (node) inside one [`Dfg`].
///
/// Node ids are dense (`0..dfg.len()`) and assigned in insertion order,
/// which is also a topological order of the graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a live-in value (a register or memory value produced
/// outside the basic block).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(u32);

impl ValueId {
    /// Creates a value id from a raw index.
    pub fn new(index: u32) -> Self {
        ValueId(index)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One input of an operation.
///
/// Register read ports are consumed by [`Operand::Node`] values produced
/// outside a candidate subgraph and by [`Operand::LiveIn`] values;
/// [`Operand::Const`] models an immediate, which is encoded in the
/// instruction word (or hard-wired inside the ASFU) and costs no port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand {
    /// The value produced by another node of the same DFG.
    Node(NodeId),
    /// A value live on entry to the basic block.
    LiveIn(ValueId),
    /// An immediate constant.
    Const(i64),
}

/// A node of a [`Dfg`]: one assembly operation plus its payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DfgNode<N> {
    payload: N,
    operands: Vec<Operand>,
    live_out: bool,
}

impl<N> DfgNode<N> {
    /// The user payload (e.g. the opcode and implementation-option table).
    pub fn payload(&self) -> &N {
        &self.payload
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut N {
        &mut self.payload
    }

    /// The operands (inputs) of the operation, in argument order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Whether the value produced by this node is live on exit from the
    /// basic block.
    pub fn is_live_out(&self) -> bool {
        self.live_out
    }
}

/// The data-flow graph of one basic block.
///
/// `Dfg` is generic over its node payload `N`; the ISA crate instantiates it
/// with an operation descriptor carrying the opcode and implementation
/// option table. Structure-only analyses (reachability, convexity, ports)
/// work for any payload.
///
/// The graph is acyclic by construction: [`Dfg::add_node`] only accepts
/// operands that refer to already-inserted nodes, so node insertion order is
/// a topological order.
///
/// # Example
///
/// ```
/// use isex_dfg::{Dfg, Operand};
///
/// let mut dfg: Dfg<u32> = Dfg::new();
/// let a = dfg.add_node(0, vec![]);
/// let b = dfg.add_node(1, vec![Operand::Node(a)]);
/// assert_eq!(dfg.succs(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dfg<N> {
    nodes: Vec<DfgNode<N>>,
    /// Successor adjacency: `succs[u]` lists each `v` with an edge `u -> v`,
    /// once per consuming operand.
    succs: Vec<Vec<NodeId>>,
    live_ins: u32,
}

impl<N> Default for Dfg<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> Dfg<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dfg {
            nodes: Vec::new(),
            succs: Vec::new(),
            live_ins: 0,
        }
    }

    /// Declares a fresh live-in value and returns its id.
    pub fn live_in(&mut self) -> ValueId {
        let id = ValueId::new(self.live_ins);
        self.live_ins += 1;
        id
    }

    /// Number of declared live-in values.
    pub fn live_in_count(&self) -> usize {
        self.live_ins as usize
    }

    /// Adds an operation with the given payload and operands and returns its
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if an operand references a node id that does not exist yet
    /// (this is what keeps the graph acyclic) or a live-in value that was
    /// never declared with [`Dfg::live_in`].
    pub fn add_node(&mut self, payload: N, operands: Vec<Operand>) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        for op in &operands {
            match *op {
                Operand::Node(p) => {
                    assert!(
                        p.index() < self.nodes.len(),
                        "operand {p:?} must reference an existing node"
                    );
                    self.succs[p.index()].push(id);
                }
                Operand::LiveIn(v) => {
                    assert!(
                        v.index() < self.live_ins as usize,
                        "live-in {v:?} was never declared"
                    );
                }
                Operand::Const(_) => {}
            }
        }
        self.nodes.push(DfgNode {
            payload,
            operands,
            live_out: false,
        });
        self.succs.push(Vec::new());
        id
    }

    /// Marks (or unmarks) the value of `id` as live on exit from the block.
    pub fn set_live_out(&mut self, id: NodeId, live: bool) {
        self.nodes[id.index()].live_out = live;
    }

    /// Number of operations in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no operations.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &DfgNode<N> {
        &self.nodes[id.index()]
    }

    /// Mutable access to the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node_mut(&mut self, id: NodeId) -> &mut DfgNode<N> {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &DfgNode<N>)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i as u32), n))
    }

    /// Iterates over all node ids in topological (insertion) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + use<N> {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over the distinct predecessor nodes of `id`.
    ///
    /// A node consuming the same producer twice (e.g. `add a, x, x`) reports
    /// it once.
    pub fn preds(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut seen: Vec<NodeId> = Vec::new();
        self.nodes[id.index()]
            .operands
            .iter()
            .filter_map(move |op| {
                if let Operand::Node(p) = *op {
                    if !seen.contains(&p) {
                        seen.push(p);
                        return Some(p);
                    }
                }
                None
            })
    }

    /// Iterates over the distinct successor nodes of `id`.
    pub fn succs(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut seen: Vec<NodeId> = Vec::new();
        self.succs[id.index()].iter().filter_map(move |&s| {
            if seen.contains(&s) {
                None
            } else {
                seen.push(s);
                Some(s)
            }
        })
    }

    /// Number of distinct successor nodes of `id` (the paper's default
    /// scheduling-priority metric, §4.3: "the number of child operations").
    pub fn child_count(&self, id: NodeId) -> usize {
        self.succs(id).count()
    }

    /// Returns `true` if `id` has no predecessors inside the graph.
    pub fn is_source(&self, id: NodeId) -> bool {
        self.preds(id).next().is_none()
    }

    /// Returns `true` if `id` has no successors inside the graph.
    pub fn is_sink(&self, id: NodeId) -> bool {
        self.succs[id.index()].is_empty()
    }

    /// Maps every payload, preserving structure.
    pub fn map<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> Dfg<M> {
        Dfg {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| DfgNode {
                    payload: f(NodeId::new(i as u32), &n.payload),
                    operands: n.operands.clone(),
                    live_out: n.live_out,
                })
                .collect(),
            succs: self.succs.clone(),
            live_ins: self.live_ins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dfg<&'static str>, [NodeId; 4]) {
        // a -> b, a -> c, {b,c} -> d
        let mut g: Dfg<&'static str> = Dfg::new();
        let x = g.live_in();
        let a = g.add_node("a", vec![Operand::LiveIn(x)]);
        let b = g.add_node("b", vec![Operand::Node(a)]);
        let c = g.add_node("c", vec![Operand::Node(a), Operand::Const(1)]);
        let d = g.add_node("d", vec![Operand::Node(b), Operand::Node(c)]);
        g.set_live_out(d, true);
        (g, [a, b, c, d])
    }

    #[test]
    fn adjacency_matches_operands() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.preds(d).collect::<Vec<_>>(), vec![b, c]);
        assert!(g.is_source(a));
        assert!(g.is_sink(d));
        assert_eq!(g.child_count(a), 2);
        assert_eq!(g.child_count(d), 0);
    }

    #[test]
    fn duplicate_operand_counted_once_in_preds() {
        let mut g: Dfg<()> = Dfg::new();
        let a = g.add_node((), vec![]);
        let b = g.add_node((), vec![Operand::Node(a), Operand::Node(a)]);
        assert_eq!(g.preds(b).count(), 1);
        assert_eq!(g.succs(a).count(), 1);
    }

    #[test]
    fn live_out_flag_roundtrips() {
        let (g, [_, _, _, d]) = diamond();
        assert!(g.node(d).is_live_out());
        assert!(!g.node(NodeId::new(0)).is_live_out());
    }

    #[test]
    #[should_panic(expected = "existing node")]
    fn forward_reference_panics() {
        let mut g: Dfg<()> = Dfg::new();
        g.add_node((), vec![Operand::Node(NodeId::new(5))]);
    }

    #[test]
    #[should_panic(expected = "never declared")]
    fn undeclared_live_in_panics() {
        let mut g: Dfg<()> = Dfg::new();
        g.add_node((), vec![Operand::LiveIn(ValueId::new(0))]);
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, _, _, d]) = diamond();
        let m = g.map(|_, s| s.len());
        assert_eq!(m.len(), 4);
        assert_eq!(m.succs(a).count(), 2);
        assert!(m.node(d).is_live_out());
    }
}
