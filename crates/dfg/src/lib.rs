//! Data-flow-graph substrate for instruction-set-extension exploration.
//!
//! This crate implements the graph layer that the whole ISE tool-chain is
//! built on: a compact directed-acyclic-graph container ([`Dfg`]), dense node
//! bitsets ([`NodeSet`]), reachability analysis ([`Reachability`]),
//! convexity checking and repair ([`convex`]), and input/output register-port
//! counting for candidate subgraphs ([`ports`]).
//!
//! The paper formulates ISE exploration over a data-flow graph `G(V, E)`
//! where every vertex is one assembly operation of a basic block and every
//! edge `(u, v)` means that `v` consumes the value produced by `u`
//! (thesis §4.0). An ISE candidate is a subgraph `S ⊆ G` subject to the
//! constraints of §4.2: `IN(S) ≤ N_in`, `OUT(S) ≤ N_out`, `S` convex, and no
//! load/store operation inside `S`. Everything needed to evaluate those
//! constraints — except the load/store opcode classification, which lives in
//! `isex-isa` — is provided here in a payload-generic way.
//!
//! # Example
//!
//! ```
//! use isex_dfg::{Dfg, Operand};
//!
//! // Build  a = x + y;  b = a << 2
//! let mut dfg: Dfg<&'static str> = Dfg::new();
//! let x = dfg.live_in();
//! let y = dfg.live_in();
//! let a = dfg.add_node("add", vec![Operand::LiveIn(x), Operand::LiveIn(y)]);
//! let b = dfg.add_node("sll", vec![Operand::Node(a), Operand::Const(2)]);
//! dfg.set_live_out(b, true);
//!
//! assert_eq!(dfg.len(), 2);
//! assert_eq!(dfg.preds(b).count(), 1);
//! assert_eq!(dfg.succs(a).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bitset;
mod graph;

pub mod analysis;
pub mod convex;
pub mod dot;
pub mod ports;

pub use analysis::Reachability;
pub use arena::CsrAdjacency;
pub use bitset::NodeSet;
pub use graph::{Dfg, DfgNode, NodeId, Operand, ValueId};
