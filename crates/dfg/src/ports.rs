//! Register-port accounting for candidate subgraphs.
//!
//! `IN(S)` is "the number of input values used by a subgraph `S`" and
//! `OUT(S)` "the number of output values generated" (§4.2). They are checked
//! against the register-file read/write port limits `N_in` / `N_out`:
//! collapsing `S` into one instruction means all of its external operands
//! must be read, and all of its externally-visible results written, through
//! the register file in the ISE's issue slot.
//!
//! Counting rules:
//!
//! * an `Operand::Node` whose producer is *outside*
//!   `S` costs one input, counted once per distinct producer;
//! * an `Operand::LiveIn` costs one input, counted
//!   once per distinct live-in value;
//! * an `Operand::Const` is an immediate and costs
//!   nothing (it is encoded in the instruction or hard-wired in the ASFU);
//! * a node of `S` is an output iff its value is consumed by a node outside
//!   `S` or is live out of the basic block.

use crate::bitset::NodeSet;
use crate::graph::{Dfg, Operand};

/// The input/output port demand of a subgraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortDemand {
    /// Distinct external input values (`IN(S)`).
    pub inputs: usize,
    /// Distinct externally-consumed output values (`OUT(S)`).
    pub outputs: usize,
}

impl PortDemand {
    /// Returns `true` if the demand fits within `n_in` read and `n_out`
    /// write ports.
    pub fn fits(&self, n_in: usize, n_out: usize) -> bool {
        self.inputs <= n_in && self.outputs <= n_out
    }
}

/// Computes `IN(S)` and `OUT(S)` for `set`.
///
/// # Example
///
/// ```
/// use isex_dfg::{ports, Dfg, NodeSet, Operand};
///
/// let mut g: Dfg<()> = Dfg::new();
/// let x = g.live_in();
/// let y = g.live_in();
/// let a = g.add_node((), vec![Operand::LiveIn(x), Operand::LiveIn(y)]);
/// let b = g.add_node((), vec![Operand::Node(a), Operand::Const(3)]);
/// g.set_live_out(b, true);
/// let mut s = NodeSet::new(2);
/// s.insert(a);
/// s.insert(b);
/// let d = ports::demand(&g, &s);
/// assert_eq!(d.inputs, 2);  // the two live-ins; the constant is free
/// assert_eq!(d.outputs, 1); // only b leaves the subgraph
/// ```
pub fn demand<N>(dfg: &Dfg<N>, set: &NodeSet) -> PortDemand {
    let mut ext_producers = NodeSet::new(dfg.len());
    let mut live_ins: Vec<u32> = Vec::new();
    for n in set {
        for op in dfg.node(n).operands() {
            match *op {
                Operand::Node(p) => {
                    if !set.contains(p) {
                        ext_producers.insert(p);
                    }
                }
                Operand::LiveIn(v) => {
                    let raw = v.index() as u32;
                    if !live_ins.contains(&raw) {
                        live_ins.push(raw);
                    }
                }
                Operand::Const(_) => {}
            }
        }
    }
    let mut outputs = 0usize;
    for n in set {
        let node = dfg.node(n);
        let escapes = node.is_live_out() || dfg.succs(n).any(|s| !set.contains(s));
        if escapes {
            outputs += 1;
        }
    }
    PortDemand {
        inputs: ext_producers.len() + live_ins.len(),
        outputs,
    }
}

/// `IN(S)` alone. See [`demand`].
pub fn input_count<N>(dfg: &Dfg<N>, set: &NodeSet) -> usize {
    demand(dfg, set).inputs
}

/// `OUT(S)` alone. See [`demand`].
pub fn output_count<N>(dfg: &Dfg<N>, set: &NodeSet) -> usize {
    demand(dfg, set).outputs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_values_cost_nothing() {
        // chain a -> b -> c fully inside S: one live-in input, one output.
        let mut g: Dfg<()> = Dfg::new();
        let x = g.live_in();
        let a = g.add_node((), vec![Operand::LiveIn(x)]);
        let b = g.add_node((), vec![Operand::Node(a)]);
        let c = g.add_node((), vec![Operand::Node(b)]);
        g.set_live_out(c, true);
        let s = NodeSet::full(3);
        assert_eq!(
            demand(&g, &s),
            PortDemand {
                inputs: 1,
                outputs: 1
            }
        );
    }

    #[test]
    fn shared_external_producer_counted_once() {
        let mut g: Dfg<()> = Dfg::new();
        let a = g.add_node((), vec![]);
        let b = g.add_node((), vec![Operand::Node(a)]);
        let c = g.add_node((), vec![Operand::Node(a)]);
        let d = g.add_node((), vec![Operand::Node(b), Operand::Node(c)]);
        let mut s = NodeSet::new(4);
        s.insert(b);
        s.insert(c);
        s.insert(d);
        // a feeds both b and c but is one distinct input value; d's result
        // is never consumed and is not live-out, so there is no output.
        assert_eq!(
            demand(&g, &s),
            PortDemand {
                inputs: 1,
                outputs: 0
            }
        );
    }

    #[test]
    fn shared_live_in_counted_once() {
        let mut g: Dfg<()> = Dfg::new();
        let x = g.live_in();
        let a = g.add_node((), vec![Operand::LiveIn(x)]);
        let _b = g.add_node((), vec![Operand::LiveIn(x), Operand::Node(a)]);
        let s = NodeSet::full(2);
        assert_eq!(input_count(&g, &s), 1);
    }

    #[test]
    fn constants_are_free() {
        let mut g: Dfg<()> = Dfg::new();
        let _a = g.add_node((), vec![Operand::Const(1), Operand::Const(2)]);
        let s = NodeSet::full(1);
        assert_eq!(input_count(&g, &s), 0);
    }

    #[test]
    fn internal_node_also_consumed_outside_is_an_output() {
        // a -> b (in S), a -> c (outside S): a's value escapes.
        let mut g: Dfg<()> = Dfg::new();
        let a = g.add_node((), vec![]);
        let b = g.add_node((), vec![Operand::Node(a)]);
        let _c = g.add_node((), vec![Operand::Node(a)]);
        let mut s = NodeSet::new(3);
        s.insert(a);
        s.insert(b);
        let d = demand(&g, &s);
        // a escapes to c; b has no consumer and is not live-out.
        assert_eq!(d.outputs, 1);
    }

    #[test]
    fn dead_sink_without_live_out_is_not_an_output() {
        let mut g: Dfg<()> = Dfg::new();
        let _a = g.add_node((), vec![]);
        let s = NodeSet::full(1);
        // a has no consumers and is not live-out: produces no architectural
        // output (e.g. a store-like op modelled elsewhere).
        assert_eq!(output_count(&g, &s), 0);
    }

    #[test]
    fn fits_respects_both_limits() {
        let d = PortDemand {
            inputs: 4,
            outputs: 2,
        };
        assert!(d.fits(4, 2));
        assert!(!d.fits(3, 2));
        assert!(!d.fits(4, 1));
    }

    #[test]
    fn empty_set_has_zero_demand() {
        let mut g: Dfg<()> = Dfg::new();
        let _ = g.add_node((), vec![]);
        assert_eq!(
            demand(&g, &NodeSet::new(1)),
            PortDemand {
                inputs: 0,
                outputs: 0
            }
        );
    }
}
