//! Graphviz export for DFGs and candidate subgraphs.
//!
//! Handy for debugging explorations: nodes inside a highlighted set are
//! drawn filled, live-outs get a double border, and live-in / constant
//! operands appear as small satellite nodes.

use std::fmt::Write as _;

use crate::bitset::NodeSet;
use crate::graph::{Dfg, Operand};

/// Renders `dfg` as a Graphviz `digraph`, labelling each node with
/// `label(id, payload)`. Nodes contained in `highlight` (if given) are
/// filled grey — use this to visualise an ISE candidate.
///
/// # Example
///
/// ```
/// use isex_dfg::{dot, Dfg, Operand};
///
/// let mut g: Dfg<&str> = Dfg::new();
/// let a = g.add_node("add", vec![]);
/// let _b = g.add_node("sll", vec![Operand::Node(a)]);
/// let text = dot::to_dot(&g, None, |_, p| p.to_string());
/// assert!(text.contains("digraph"));
/// assert!(text.contains("add"));
/// ```
pub fn to_dot<N>(
    dfg: &Dfg<N>,
    highlight: Option<&NodeSet>,
    mut label: impl FnMut(crate::NodeId, &N) -> String,
) -> String {
    let mut out =
        String::from("digraph dfg {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for (id, node) in dfg.iter() {
        let mut attrs = format!("label=\"{}: {}\"", id, escape(&label(id, node.payload())));
        if highlight.is_some_and(|h| h.contains(id)) {
            attrs.push_str(", style=filled, fillcolor=lightgrey");
        }
        if node.is_live_out() {
            attrs.push_str(", peripheries=2");
        }
        let _ = writeln!(out, "  n{} [{}];", id, attrs);
    }
    let mut ext = 0usize;
    for (id, node) in dfg.iter() {
        for op in node.operands() {
            match *op {
                Operand::Node(p) => {
                    let _ = writeln!(out, "  n{} -> n{};", p, id);
                }
                Operand::LiveIn(v) => {
                    let _ = writeln!(
                        out,
                        "  ext{ext} [label=\"v{}\", shape=ellipse, fontsize=9];\n  ext{ext} -> n{};",
                        v.index(),
                        id
                    );
                    ext += 1;
                }
                Operand::Const(c) => {
                    let _ = writeln!(
                        out,
                        "  ext{ext} [label=\"#{c}\", shape=plaintext, fontsize=9];\n  ext{ext} -> n{};",
                        id
                    );
                    ext += 1;
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn renders_all_nodes_edges_and_externals() {
        let mut g: Dfg<&str> = Dfg::new();
        let x = g.live_in();
        let a = g.add_node("add", vec![Operand::LiveIn(x), Operand::Const(7)]);
        let b = g.add_node("xor", vec![Operand::Node(a)]);
        g.set_live_out(b, true);
        let mut hl = NodeSet::new(2);
        hl.insert(b);
        let text = to_dot(&g, Some(&hl), |_, p| p.to_string());
        assert!(text.contains("n0 -> n1"));
        assert!(text.contains("v0"));
        assert!(text.contains("#7"));
        assert!(text.contains("fillcolor=lightgrey"));
        assert!(text.contains("peripheries=2"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g: Dfg<&str> = Dfg::new();
        g.add_node("say \"hi\"", vec![]);
        let text = to_dot(&g, None, |_, p| p.to_string());
        assert!(text.contains("say \\\"hi\\\""));
        let _ = NodeId::new(0);
    }
}
