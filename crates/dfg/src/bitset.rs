//! Dense bitsets over DFG node indices.
//!
//! Candidate ISE subgraphs, reachability rows and scheduling ready sets are
//! all sets of nodes of one (small) basic-block DFG, so a dense `u64`-block
//! bitset is both the fastest and the simplest representation. All set
//! algebra used by the convexity and port analyses is provided here.

use crate::graph::NodeId;

const BITS: usize = 64;

/// A dense set of [`NodeId`]s backed by `u64` blocks.
///
/// A `NodeSet` has a fixed *universe size* (the number of nodes of the DFG it
/// refers to), established at construction. Binary operations panic when the
/// universe sizes differ, which catches cross-graph mix-ups early.
///
/// # Example
///
/// ```
/// use isex_dfg::{NodeSet, NodeId};
///
/// let mut s = NodeSet::new(10);
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(7));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId::new(3)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId::new(3), NodeId::new(7)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    blocks: Vec<u64>,
    universe: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `universe` nodes.
    pub fn new(universe: usize) -> Self {
        NodeSet {
            blocks: vec![0; universe.div_ceil(BITS)],
            universe,
        }
    }

    /// Creates a set containing every node of the universe.
    pub fn full(universe: usize) -> Self {
        let mut s = NodeSet::new(universe);
        for i in 0..universe {
            s.insert(NodeId::new(i as u32));
        }
        s
    }

    /// Returns the universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a node; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let idx = id.index();
        assert!(
            idx < self.universe,
            "node {idx} outside universe {}",
            self.universe
        );
        let (b, m) = (idx / BITS, 1u64 << (idx % BITS));
        let fresh = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        fresh
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let idx = id.index();
        if idx >= self.universe {
            return false;
        }
        let (b, m) = (idx / BITS, 1u64 << (idx % BITS));
        let present = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        present
    }

    /// Returns `true` if the node is in the set.
    pub fn contains(&self, id: NodeId) -> bool {
        let idx = id.index();
        idx < self.universe && self.blocks[idx / BITS] & (1u64 << (idx % BITS)) != 0
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no node.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes every node from the set.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        self.check(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        self.check(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference: removes every node of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the universe sizes differ.
    pub fn difference_with(&mut self, other: &NodeSet) {
        self.check(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns the union of `self` and `other` as a new set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection of `self` and `other` as a new set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns `true` if the two sets share at least one node.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.check(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every node of `self` is in `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.check(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the nodes of the set in ascending index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Returns the smallest node in the set, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// The raw `u64` blocks backing the set, low indices first.
    ///
    /// Two sets over the same universe are equal iff their words are equal,
    /// which makes the words a canonical fingerprint of the membership —
    /// the hot-path evaluation cache keys on them directly instead of
    /// iterating members.
    pub fn as_words(&self) -> &[u64] {
        &self.blocks
    }

    fn check(&self, other: &NodeSet) {
        assert_eq!(
            self.universe, other.universe,
            "bitset universe mismatch: {} vs {}",
            self.universe, other.universe
        );
    }
}

impl serde::Serialize for NodeSet {
    /// Serialises as `(universe, [member indices])`.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let members: Vec<u32> = self.iter().map(|n| n.index() as u32).collect();
        (self.universe as u64, members).serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for NodeSet {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (universe, members): (u64, Vec<u32>) = serde::Deserialize::deserialize(deserializer)?;
        let mut set = NodeSet::new(universe as usize);
        for m in members {
            if m as usize >= set.universe {
                return Err(serde::de::Error::custom(format!(
                    "member {m} outside universe {universe}"
                )));
            }
            if !set.insert(NodeId::new(m)) {
                return Err(serde::de::Error::custom(format!("duplicate member {m}")));
            }
        }
        Ok(set)
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|n| n.index()))
            .finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collects node ids into a set whose universe is just large enough to
    /// hold the largest id. Prefer [`NodeSet::new`] with the DFG size when
    /// the set will be combined with other sets of the same graph.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let universe = ids.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut s = NodeSet::new(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Iterator over the nodes of a [`NodeSet`], produced by [`NodeSet::iter`].
pub struct Iter<'a> {
    set: &'a NodeSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(NodeId::new((self.block * BITS + bit) as u32));
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(n(0)));
        assert!(s.insert(n(64)));
        assert!(s.insert(n(129)));
        assert!(!s.insert(n(64)), "second insert reports already-present");
        assert!(s.contains(n(0)) && s.contains(n(64)) && s.contains(n(129)));
        assert!(!s.contains(n(1)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(n(64)));
        assert!(!s.remove(n(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_algebra() {
        let mut a = NodeSet::new(100);
        let mut b = NodeSet::new(100);
        for i in 0..50 {
            a.insert(n(i));
        }
        for i in 25..75 {
            b.insert(n(i));
        }
        assert_eq!(a.union(&b).len(), 75);
        assert_eq!(a.intersection(&b).len(), 25);
        assert_eq!(a.difference(&b).len(), 25);
        assert!(a.intersects(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = NodeSet::new(200);
        let picks = [3u32, 63, 64, 65, 127, 128, 199];
        for &i in &picks {
            s.insert(n(i));
        }
        let out: Vec<u32> = s.iter().map(|x| x.index() as u32).collect();
        assert_eq!(out, picks);
    }

    #[test]
    fn empty_and_full() {
        let s = NodeSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = NodeSet::full(67);
        assert_eq!(f.len(), 67);
        assert!(f.contains(n(66)));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let a = NodeSet::new(10);
        let b = NodeSet::new(20);
        let _ = a.union(&b);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: NodeSet = [n(2), n(9)].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = NodeSet::full(12);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn words_are_a_canonical_fingerprint() {
        let mut a = NodeSet::new(130);
        let mut b = NodeSet::new(130);
        for &i in &[0u32, 64, 129] {
            a.insert(n(i));
            b.insert(n(i));
        }
        assert_eq!(a.as_words(), b.as_words());
        assert_eq!(a.as_words().len(), 3, "130 nodes span three u64 words");
        b.remove(n(64));
        assert_ne!(a.as_words(), b.as_words());
        b.insert(n(64));
        assert_eq!(a.as_words(), b.as_words(), "membership round-trips");
    }
}
