//! Arena-packed adjacency: the hot-loop view of a [`Dfg`].
//!
//! [`Dfg::preds`]/[`Dfg::succs`] are correctness-first iterators — each call
//! allocates a small dedup buffer and walks the operand list. The inner
//! loops of ISE exploration (ant readiness scans, timing passes, quotient
//! construction) traverse the same unchanging edges thousands of times per
//! round, so [`CsrAdjacency`] freezes both directions once into compressed
//! sparse rows: one offset vector plus one flat neighbour arena per
//! direction, yielding allocation-free `&[NodeId]` slices.
//!
//! The neighbour lists carry exactly the *distinct* predecessors and
//! successors in first-occurrence order — the same sequence the `Dfg`
//! iterators produce — so swapping one for the other never changes an
//! analysis result.

use crate::bitset::NodeSet;
use crate::graph::{Dfg, NodeId};

/// Compressed-sparse-row predecessor/successor adjacency of a [`Dfg`].
///
/// Built once per graph; `preds`/`succs` then answer in O(1) with borrowed
/// slices. Neighbour order matches [`Dfg::preds`]/[`Dfg::succs`]
/// (first-occurrence, duplicates removed).
///
/// # Example
///
/// ```
/// use isex_dfg::{CsrAdjacency, Dfg, Operand};
///
/// let mut g: Dfg<&str> = Dfg::new();
/// let a = g.add_node("a", vec![]);
/// let b = g.add_node("b", vec![Operand::Node(a), Operand::Node(a)]);
/// let csr = CsrAdjacency::from_dfg(&g);
/// assert_eq!(csr.preds(b.index()), &[a], "duplicate operand deduped");
/// assert_eq!(csr.succs(a.index()), &[b]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CsrAdjacency {
    pred_off: Vec<u32>,
    pred: Vec<NodeId>,
    succ_off: Vec<u32>,
    succ: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Freezes both adjacency directions of `dfg`.
    pub fn from_dfg<N>(dfg: &Dfg<N>) -> Self {
        let mut csr = CsrAdjacency::default();
        csr.rebuild(dfg);
        csr
    }

    /// Rebuilds in place from `dfg`, reusing the four buffers.
    pub fn rebuild<N>(&mut self, dfg: &Dfg<N>) {
        let k = dfg.len();
        self.pred_off.clear();
        self.pred.clear();
        self.succ_off.clear();
        self.succ.clear();
        self.pred_off.reserve(k + 1);
        self.succ_off.reserve(k + 1);
        self.pred_off.push(0);
        for id in dfg.node_ids() {
            self.pred.extend(dfg.preds(id));
            self.pred_off.push(self.pred.len() as u32);
        }
        self.succ_off.push(0);
        for id in dfg.node_ids() {
            self.succ.extend(dfg.succs(id));
            self.succ_off.push(self.succ.len() as u32);
        }
    }

    /// Number of nodes this adjacency was built over.
    pub fn len(&self) -> usize {
        self.pred_off.len().saturating_sub(1)
    }

    /// Returns `true` if built over an empty graph (or never built).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct predecessors of node `u`, first-occurrence order.
    pub fn preds(&self, u: usize) -> &[NodeId] {
        &self.pred[self.pred_off[u] as usize..self.pred_off[u + 1] as usize]
    }

    /// Distinct successors of node `u`, first-occurrence order.
    pub fn succs(&self, u: usize) -> &[NodeId] {
        &self.succ[self.succ_off[u] as usize..self.succ_off[u + 1] as usize]
    }

    /// Number of distinct predecessors of node `u`.
    pub fn pred_count(&self, u: usize) -> usize {
        (self.pred_off[u + 1] - self.pred_off[u]) as usize
    }

    /// Writes the distinct-predecessor count of every node into `out`
    /// (cleared first) — the ready-counter seed for counter-driven
    /// scheduling, one `u32` per node.
    pub fn pred_counts_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.len()).map(|u| self.pred_off[u + 1] - self.pred_off[u]));
    }

    /// All external predecessors of `set` (distinct, ascending) folded by
    /// `f` — a bitset-kernel helper for cone queries over member sets.
    pub fn for_external_preds(&self, set: &NodeSet, mut f: impl FnMut(NodeId)) {
        for m in set.iter() {
            for &p in self.preds(m.index()) {
                if !set.contains(p) {
                    f(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Operand;

    fn diamond() -> (Dfg<&'static str>, [NodeId; 4]) {
        let mut g: Dfg<&'static str> = Dfg::new();
        let a = g.add_node("a", vec![]);
        let b = g.add_node("b", vec![Operand::Node(a)]);
        let c = g.add_node("c", vec![Operand::Node(a)]);
        let d = g.add_node("d", vec![Operand::Node(b), Operand::Node(c)]);
        (g, [a, b, c, d])
    }

    #[test]
    fn matches_dfg_iterators() {
        let (g, _) = diamond();
        let csr = CsrAdjacency::from_dfg(&g);
        assert_eq!(csr.len(), g.len());
        for id in g.node_ids() {
            assert_eq!(csr.preds(id.index()), g.preds(id).collect::<Vec<_>>());
            assert_eq!(csr.succs(id.index()), g.succs(id).collect::<Vec<_>>());
            assert_eq!(csr.pred_count(id.index()), g.preds(id).count());
        }
    }

    #[test]
    fn dedups_like_the_dfg() {
        let mut g: Dfg<&str> = Dfg::new();
        let a = g.add_node("a", vec![]);
        let b = g.add_node(
            "b",
            vec![Operand::Node(a), Operand::Node(a), Operand::Node(a)],
        );
        let csr = CsrAdjacency::from_dfg(&g);
        assert_eq!(csr.preds(b.index()), &[a]);
        assert_eq!(csr.succs(a.index()), &[b]);
    }

    #[test]
    fn rebuild_reuses_and_resizes() {
        let (g, _) = diamond();
        let mut csr = CsrAdjacency::from_dfg(&g);
        let mut small: Dfg<&str> = Dfg::new();
        small.add_node("only", vec![]);
        csr.rebuild(&small);
        assert_eq!(csr.len(), 1);
        assert!(csr.preds(0).is_empty());
        assert!(csr.succs(0).is_empty());
    }

    #[test]
    fn pred_counts_and_external_preds() {
        let (g, [a, b, c, d]) = diamond();
        let csr = CsrAdjacency::from_dfg(&g);
        let mut counts = Vec::new();
        csr.pred_counts_into(&mut counts);
        assert_eq!(counts, vec![0, 1, 1, 2]);
        let mut set = NodeSet::new(g.len());
        set.insert(b);
        set.insert(d);
        let mut ext = Vec::new();
        csr.for_external_preds(&set, |p| ext.push(p));
        assert_eq!(ext, vec![a, c], "a feeds b, c feeds d; b→d is internal");
    }

    #[test]
    fn empty_graph() {
        let g: Dfg<&str> = Dfg::new();
        let csr = CsrAdjacency::from_dfg(&g);
        assert_eq!(csr.len(), 0);
        assert!(csr.is_empty());
    }
}
