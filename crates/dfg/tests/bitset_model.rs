//! Model-based property tests: `NodeSet` against `BTreeSet<usize>`.

use std::collections::BTreeSet;

use isex_dfg::{NodeId, NodeSet};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u8),
    Remove(u8),
    Clear,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..130).prop_map(Op::Insert),
            (0u8..130).prop_map(Op::Remove),
            Just(Op::Clear),
        ],
        0..120,
    )
}

const UNIVERSE: usize = 130;

fn apply(ops: &[Op]) -> (NodeSet, BTreeSet<usize>) {
    let mut set = NodeSet::new(UNIVERSE);
    let mut model = BTreeSet::new();
    for op in ops {
        match op {
            Op::Insert(i) => {
                let fresh_set = set.insert(NodeId::new(*i as u32));
                let fresh_model = model.insert(*i as usize);
                assert_eq!(fresh_set, fresh_model);
            }
            Op::Remove(i) => {
                let was_set = set.remove(NodeId::new(*i as u32));
                let was_model = model.remove(&(*i as usize));
                assert_eq!(was_set, was_model);
            }
            Op::Clear => {
                set.clear();
                model.clear();
            }
        }
    }
    (set, model)
}

proptest! {
    #[test]
    fn operations_match_the_model(ops in arb_ops()) {
        let (set, model) = apply(&ops);
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        let iterated: Vec<usize> = set.iter().map(|n| n.index()).collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(iterated, expected, "iteration order and content");
        for i in 0..UNIVERSE {
            prop_assert_eq!(set.contains(NodeId::new(i as u32)), model.contains(&i));
        }
        prop_assert_eq!(set.first().map(|n| n.index()), model.first().copied());
    }

    #[test]
    fn algebra_matches_the_model(a in arb_ops(), b in arb_ops()) {
        let (sa, ma) = apply(&a);
        let (sb, mb) = apply(&b);
        let union: BTreeSet<usize> = ma.union(&mb).copied().collect();
        let inter: BTreeSet<usize> = ma.intersection(&mb).copied().collect();
        let diff: BTreeSet<usize> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(
            sa.union(&sb).iter().map(|n| n.index()).collect::<Vec<_>>(),
            union.iter().copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sa.intersection(&sb).iter().map(|n| n.index()).collect::<Vec<_>>(),
            inter.iter().copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sa.difference(&sb).iter().map(|n| n.index()).collect::<Vec<_>>(),
            diff.iter().copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(sa.intersects(&sb), !inter.is_empty());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
    }

    #[test]
    fn serde_roundtrip_matches(ops in arb_ops()) {
        let (set, _) = apply(&ops);
        // serde round-trip through the tuple representation.
        let json = serde_json_lite(&set);
        let back = serde_json_parse(&json);
        prop_assert_eq!(back, set);
    }

    /// Real serde round-trip: Serialize → JSON → Deserialize is identity.
    #[test]
    fn serde_json_roundtrip_matches(ops in arb_ops()) {
        let (set, _) = apply(&ops);
        let json = serde_json::to_string(&set).unwrap();
        let back: NodeSet = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, set);
    }

    /// A member index at or beyond the declared universe must be rejected
    /// as a deserialization error, never panic or set out-of-range bits.
    #[test]
    fn deserialize_rejects_out_of_range_members(
        universe in 0u64..130,
        excess in 0u32..64,
        ops in arb_ops(),
    ) {
        let (set, _) = apply(&ops);
        let mut members: Vec<u32> = set
            .iter()
            .map(|n| n.index() as u32)
            .filter(|&m| (m as u64) < universe)
            .collect();
        members.push(universe as u32 + excess);
        let json = serde_json::to_string(&(universe, members)).unwrap();
        let err = serde_json::from_str::<NodeSet>(&json).unwrap_err();
        prop_assert!(
            err.to_string().contains("outside universe"),
            "unexpected error: {}", err
        );
    }

    /// A repeated member index is rejected: the canonical wire form lists
    /// each member exactly once, so a duplicate marks a corrupt or
    /// hand-forged payload rather than something to silently dedup.
    #[test]
    fn deserialize_rejects_duplicate_members(ops in arb_ops(), dup_pick in any::<prop::sample::Index>()) {
        let (set, _) = apply(&ops);
        prop_assume!(!set.is_empty());
        let mut members: Vec<u32> = set.iter().map(|n| n.index() as u32).collect();
        let dup = members[dup_pick.index(members.len())];
        members.push(dup);
        let json = serde_json::to_string(&(set.universe() as u64, members)).unwrap();
        let err = serde_json::from_str::<NodeSet>(&json).unwrap_err();
        prop_assert!(
            err.to_string().contains("duplicate member"),
            "unexpected error: {}", err
        );
    }
}

// Minimal serde harness without pulling serde_json into this crate: use
// the fact that NodeSet serialises as (universe, members) and drive it
// through serde's token-less path via bincode-style... simplest: use the
// public API itself.
fn serde_json_lite(set: &NodeSet) -> (u64, Vec<u32>) {
    (
        set.universe() as u64,
        set.iter().map(|n| n.index() as u32).collect(),
    )
}

fn serde_json_parse(data: &(u64, Vec<u32>)) -> NodeSet {
    let mut s = NodeSet::new(data.0 as usize);
    for &m in &data.1 {
        s.insert(NodeId::new(m));
    }
    s
}
