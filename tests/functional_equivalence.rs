//! Functional soundness of pattern matching and ISE replacement: every
//! match found by [`IsePattern::find_matches`] computes, via the pattern's
//! ASFU datapath, exactly the values the original operations computed.
//!
//! This is the semantic contract of replacement — substituting the match
//! with one ISE instruction must not change the program's results.

use isex::dfg::Reachability;
use isex::flow::pattern::PatternInput;
use isex::isa::semantics::{evaluate_block, Memory};
use isex::prelude::*;
use isex::workloads::random::{random_dfg, RandomDfgConfig};
use rand::Rng as _;
use rand::SeedableRng;

/// Explores a block, extracts the candidates as patterns, and checks every
/// match of every pattern against concrete execution.
fn check_block(dfg: &ProgramDfg, seed: u64) -> usize {
    let machine = MachineConfig::preset_2issue_6r3w();
    let params = AcoParams {
        max_iterations: 40,
        ..AcoParams::default()
    };
    let ex = MultiIssueExplorer::with_params(machine, Constraints::from_machine(&machine), params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let result = ex.explore(dfg, &mut rng);

    // Concrete inputs for the block.
    let live_ins: Vec<u32> = (0..dfg.live_in_count() as u32)
        .map(|i| 0x1357_9bdf_u32.wrapping_mul(i + 1) ^ seed as u32)
        .collect();
    let mut memory = Memory::new();
    let values = evaluate_block(dfg, &live_ins, &mut memory);

    let reach = Reachability::compute(dfg);
    let mut checked = 0usize;
    for cand in &result.candidates {
        let pattern = IsePattern::from_candidate(cand, dfg);
        for image in pattern.find_matches(dfg, &reach) {
            // Gather the external class values observed at this match.
            let members: Vec<_> = image.iter().collect();
            let mut class_values = vec![0u32; pattern.inputs];
            for (pat_op, &member) in pattern.ops.iter().zip(&members) {
                for (pi, op) in pat_op.inputs.iter().zip(dfg.node(member).operands()) {
                    if let PatternInput::External(c) = *pi {
                        class_values[c] = match *op {
                            Operand::Node(p) => values[p.index()],
                            Operand::LiveIn(v) => live_ins[v.index()],
                            Operand::Const(k) => k as u32,
                        };
                    }
                }
            }
            // Execute the pattern's own datapath on those inputs.
            let pdfg = pattern.to_dfg();
            let mut pmem = Memory::new();
            let pvalues = evaluate_block(&pdfg, &class_values, &mut pmem);
            // Every member's value must be reproduced.
            for (i, &member) in members.iter().enumerate() {
                assert_eq!(
                    pvalues[i],
                    values[member.index()],
                    "pattern node {i} vs block node {member:?} (seed {seed})"
                );
            }
            checked += 1;
        }
    }
    checked
}

#[test]
fn matches_reproduce_values_on_benchmarks() {
    let mut total = 0;
    for &bench in Benchmark::ALL {
        let program = bench.program(OptLevel::O3);
        total += check_block(&program.hottest().dfg, 0xE0 + bench as u64);
    }
    assert!(
        total >= 5,
        "expected several matches to verify, got {total}"
    );
}

#[test]
fn matches_reproduce_values_on_random_blocks() {
    let mut total = 0;
    for seed in 0..10u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dfg = random_dfg(
            &RandomDfgConfig {
                nodes: 30,
                width: rng.gen_range(1..4),
                mem_fraction: 0.1,
                live_ins: 5,
            },
            &mut rng,
        );
        total += check_block(&dfg, seed);
    }
    assert!(total >= 3, "expected matches on random blocks, got {total}");
}

#[test]
fn cross_block_matches_are_also_sound() {
    // A pattern explored on crc32 matched inside a *different* block must
    // still reproduce values there (this exercises external-class binding
    // against foreign producers).
    let machine = MachineConfig::preset_2issue_4r2w();
    let params = AcoParams {
        max_iterations: 40,
        ..AcoParams::default()
    };
    let ex = MultiIssueExplorer::with_params(machine, Constraints::from_machine(&machine), params);
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let src = &program.hottest().dfg;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCB);
    let result = ex.explore(src, &mut rng);
    assert!(!result.candidates.is_empty());

    // Target: the O0 variant of the same kernel (different structure, same
    // computations inside).
    let target_prog = Benchmark::Crc32.program(OptLevel::O0);
    let target = &target_prog.hottest().dfg;
    let live_ins: Vec<u32> = (0..target.live_in_count() as u32)
        .map(|i| 0xfeed_f00d_u32.rotate_left(i))
        .collect();
    let mut memory = Memory::new();
    let values = evaluate_block(target, &live_ins, &mut memory);
    let reach = Reachability::compute(target);

    for cand in &result.candidates {
        let pattern = IsePattern::from_candidate(cand, src);
        for image in pattern.find_matches(target, &reach) {
            let members: Vec<_> = image.iter().collect();
            let mut class_values = vec![0u32; pattern.inputs];
            for (pat_op, &member) in pattern.ops.iter().zip(&members) {
                for (pi, op) in pat_op.inputs.iter().zip(target.node(member).operands()) {
                    if let PatternInput::External(c) = *pi {
                        class_values[c] = match *op {
                            Operand::Node(p) => values[p.index()],
                            Operand::LiveIn(v) => live_ins[v.index()],
                            Operand::Const(k) => k as u32,
                        };
                    }
                }
            }
            let pdfg = pattern.to_dfg();
            let mut pmem = Memory::new();
            let pvalues = evaluate_block(&pdfg, &class_values, &mut pmem);
            for (i, &member) in members.iter().enumerate() {
                assert_eq!(pvalues[i], values[member.index()], "cross-block mismatch");
            }
        }
    }
}
