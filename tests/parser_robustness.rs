//! Fuzz-style robustness: the assembly parser must never panic, whatever
//! the input — errors only, with line numbers.

use isex::isa::parse::parse_block;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,200}") {
        let _ = parse_block(&text);
    }

    #[test]
    fn arbitrary_asm_shaped_lines_never_panic(
        lines in prop::collection::vec(
            (
                prop_oneof![
                    Just("add"), Just("sub"), Just("lw"), Just("sw"), Just("bne"),
                    Just("lui"), Just("mult"), Just("sll"), Just("nonsense"),
                ],
                "[$a-z0-9,() -]{0,30}",
            ),
            0..12,
        )
    ) {
        let text: String = lines
            .iter()
            .map(|(m, rest)| format!("{m} {rest}\n"))
            .collect();
        match parse_block(&text) {
            Ok(dfg) => {
                // Whatever parsed must be a well-formed DAG.
                prop_assert!(dfg.len() <= 12);
                for (id, _) in dfg.iter() {
                    for p in dfg.preds(id) {
                        prop_assert!(p.index() < id.index());
                    }
                }
            }
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    #[test]
    fn error_lines_point_into_the_input(junk in "[a-z]{1,10}", prefix_lines in 0usize..5) {
        let mut text = String::new();
        for _ in 0..prefix_lines {
            text.push_str("add $t0, $t0, 1\n");
        }
        text.push_str(&junk);
        text.push('\n');
        if let Err(e) = parse_block(&text) {
            prop_assert_eq!(e.line, prefix_lines + 1);
        }
    }
}
