//! The engine's headline contract: exploration results are bitwise
//! identical for every worker count. Seeds derive from
//! `(master_seed, block_index, repeat)` — never from scheduling — so
//! `jobs = 1` and `jobs = 4` must produce byte-identical reports.

use isex::prelude::*;
use isex::workloads::Benchmark;

fn report_json(bench: Benchmark, algorithm: Algorithm, seed: u64, jobs: usize) -> String {
    let program = bench.program(OptLevel::O3);
    let mut cfg = FlowConfig::paper_default(algorithm);
    cfg.repeats = 2;
    cfg.params.max_iterations = 25;
    cfg.jobs = jobs;
    let report = run_flow(&cfg, &program, seed);
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn parallel_flow_matches_serial_flow() {
    for bench in [Benchmark::Crc32, Benchmark::Bitcount] {
        for algorithm in [Algorithm::MultiIssue, Algorithm::SingleIssue] {
            for seed in [11u64, 0xFEED] {
                let serial = report_json(bench, algorithm, seed, 1);
                let parallel = report_json(bench, algorithm, seed, 4);
                assert_eq!(
                    serial, parallel,
                    "jobs=1 vs jobs=4 diverged: {bench:?} {algorithm} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn auto_worker_count_matches_serial_flow() {
    let serial = report_json(Benchmark::Crc32, Algorithm::MultiIssue, 7, 1);
    let auto = report_json(Benchmark::Crc32, Algorithm::MultiIssue, 7, 0);
    assert_eq!(serial, auto, "jobs=0 (auto) must equal jobs=1");
}
