//! Failure-injection and degenerate-input tests across the stack.

use isex::flow::select::Budgets;
use isex::prelude::*;
use rand::SeedableRng;

fn quick_explorer(machine: MachineConfig) -> MultiIssueExplorer {
    let params = AcoParams {
        max_iterations: 30,
        ..AcoParams::default()
    };
    MultiIssueExplorer::with_params(machine, Constraints::from_machine(&machine), params)
}

#[test]
fn single_node_block() {
    let mut dfg = ProgramDfg::new();
    let x = dfg.live_in();
    let a = dfg.add_node(
        Operation::new(Opcode::Add),
        vec![Operand::LiveIn(x), Operand::Const(1)],
    );
    dfg.set_live_out(a, true);
    let m = MachineConfig::preset_2issue_4r2w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let r = quick_explorer(m).explore(&dfg, &mut rng);
    assert_eq!(r.baseline_cycles, 1);
    assert!(r.candidates.is_empty(), "one op can never beat one cycle");
}

#[test]
fn all_memory_block() {
    let mut dfg = ProgramDfg::new();
    let x = dfg.live_in();
    let mut addr = dfg.add_node(Operation::new(Opcode::Lw), vec![Operand::LiveIn(x)]);
    for _ in 0..6 {
        addr = dfg.add_node(Operation::new(Opcode::Lw), vec![Operand::Node(addr)]);
    }
    dfg.set_live_out(addr, true);
    let m = MachineConfig::preset_4issue_10r5w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let r = quick_explorer(m).explore(&dfg, &mut rng);
    assert!(r.candidates.is_empty());
    assert_eq!(r.baseline_cycles, r.cycles_with_ises);
}

#[test]
fn disconnected_components_explore_independently() {
    let mut dfg = ProgramDfg::new();
    for _ in 0..3 {
        let x = dfg.live_in();
        let a = dfg.add_node(
            Operation::new(Opcode::Add),
            vec![Operand::LiveIn(x), Operand::Const(1)],
        );
        let b = dfg.add_node(
            Operation::new(Opcode::Sll),
            vec![Operand::Node(a), Operand::Const(2)],
        );
        let c = dfg.add_node(
            Operation::new(Opcode::Xor),
            vec![Operand::Node(b), Operand::Const(3)],
        );
        dfg.set_live_out(c, true);
    }
    let m = MachineConfig::preset_2issue_4r2w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let r = quick_explorer(m).explore(&dfg, &mut rng);
    assert!(r.cycles_with_ises < r.baseline_cycles);
    // Candidates never span components (they must be connected).
    for c in &r.candidates {
        let ids: Vec<usize> = c.nodes.iter().map(|n| n.index()).collect();
        let component = ids[0] / 3;
        assert!(ids.iter().all(|i| i / 3 == component), "{ids:?}");
    }
}

#[test]
fn minimal_port_constraints_still_yield_legal_candidates() {
    // n_in = 1, n_out = 1: only straight single-input chains qualify.
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let dfg = &program.hottest().dfg;
    let m = MachineConfig::preset_2issue_4r2w();
    let params = AcoParams {
        max_iterations: 40,
        ..AcoParams::default()
    };
    let ex = MultiIssueExplorer::with_params(m, Constraints::new(1, 1), params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let r = ex.explore(dfg, &mut rng);
    for c in &r.candidates {
        assert!(c.inputs <= 1 && c.outputs <= 1, "{c}");
    }
}

#[test]
fn contradictory_budgets_select_nothing() {
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let mut cfg = FlowConfig::paper_default(Algorithm::MultiIssue);
    cfg.repeats = 1;
    cfg.params.max_iterations = 30;
    cfg.budgets = Budgets {
        area_um2: Some(0.0),
        max_ises: Some(0),
    };
    let report = run_flow(&cfg, &program, 5);
    assert!(report.selected.is_empty());
    assert_eq!(report.total_area, 0.0);
    assert_eq!(report.cycles_before, report.cycles_after);
}

#[test]
fn sp_functions_all_work_end_to_end() {
    use isex::core::SpFunction;
    let program = Benchmark::Adpcm.program(OptLevel::O3);
    let dfg = &program.hottest().dfg;
    let m = MachineConfig::preset_2issue_4r2w();
    for sp in [
        SpFunction::ChildCount,
        SpFunction::Height,
        SpFunction::Mobility,
    ] {
        let mut ex = quick_explorer(m);
        ex.sp_function = sp;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let r = ex.explore(dfg, &mut rng);
        assert!(
            r.cycles_with_ises <= r.baseline_cycles,
            "{sp:?}: {} -> {}",
            r.baseline_cycles,
            r.cycles_with_ises
        );
    }
}

#[test]
fn wide_fanout_node_is_handled() {
    // One producer feeding 12 consumers: OUT(S) pressure everywhere.
    let mut dfg = ProgramDfg::new();
    let x = dfg.live_in();
    let hub = dfg.add_node(
        Operation::new(Opcode::Add),
        vec![Operand::LiveIn(x), Operand::Const(1)],
    );
    for i in 0..12 {
        let c = dfg.add_node(
            Operation::new(Opcode::Xor),
            vec![Operand::Node(hub), Operand::Const(i)],
        );
        dfg.set_live_out(c, true);
    }
    let m = MachineConfig::preset_2issue_4r2w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let r = quick_explorer(m).explore(&dfg, &mut rng);
    assert!(r.cycles_with_ises <= r.baseline_cycles);
    for c in &r.candidates {
        assert!(c.outputs <= 2);
    }
}

#[test]
fn duplicate_operand_edges_survive_the_pipeline() {
    // a used twice by b (x*x style): preds dedup, ports count one value.
    let mut dfg = ProgramDfg::new();
    let x = dfg.live_in();
    let a = dfg.add_node(
        Operation::new(Opcode::Add),
        vec![Operand::LiveIn(x), Operand::Const(1)],
    );
    let b = dfg.add_node(
        Operation::new(Opcode::Mult),
        vec![Operand::Node(a), Operand::Node(a)],
    );
    let c = dfg.add_node(
        Operation::new(Opcode::Srl),
        vec![Operand::Node(b), Operand::Const(4)],
    );
    dfg.set_live_out(c, true);
    let m = MachineConfig::preset_2issue_6r3w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let r = quick_explorer(m).explore(&dfg, &mut rng);
    assert!(r.cycles_with_ises <= r.baseline_cycles);
}

#[test]
fn zero_latency_hw_option_is_clamped() {
    use isex::isa::{HwOption, IoTable, SwOption};
    // A pathological IO table with 0 ns delay must not produce 0-cycle
    // instructions anywhere.
    let mut dfg = ProgramDfg::new();
    let x = dfg.live_in();
    let t = Operation::with_table(
        Opcode::Add,
        IoTable::new(vec![SwOption::new(1)], vec![HwOption::new(0.0, 10.0)]),
    );
    let a = dfg.add_node(t.clone(), vec![Operand::LiveIn(x), Operand::Const(1)]);
    let b = dfg.add_node(t, vec![Operand::Node(a), Operand::Const(2)]);
    dfg.set_live_out(b, true);
    let m = MachineConfig::preset_2issue_4r2w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let r = quick_explorer(m).explore(&dfg, &mut rng);
    for c in &r.candidates {
        assert!(c.latency >= 1);
    }
    assert!(r.cycles_with_ises >= 1);
}
