//! End-to-end observability tests: tracing must observe without
//! perturbing (bitwise-identical reports), produce well-formed span trees
//! even when jobs panic, export Perfetto-loadable Chrome traces, and
//! account for essentially all of a run's wall time in the phase profile.

use isex::engine::VecSink;
use isex::flow::FaultPlan;
use isex::prelude::*;
use serde::Value;

fn quick_cfg() -> FlowConfig {
    let mut cfg =
        FlowConfig::for_machine(Algorithm::MultiIssue, MachineConfig::preset_2issue_4r2w());
    cfg.repeats = 2;
    cfg.jobs = 2;
    cfg.params.max_iterations = 60;
    cfg
}

#[test]
fn traced_and_untraced_reports_are_bitwise_identical() {
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let plain = run_flow(&quick_cfg(), &program, 0x0b5e);
    let mut traced_cfg = quick_cfg();
    traced_cfg.tracer = Tracer::new();
    let traced = run_flow(&traced_cfg, &program, 0x0b5e);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "tracing consumed RNG or changed control flow"
    );
    assert!(
        !traced_cfg.tracer.records().is_empty(),
        "the traced run recorded no spans"
    );
}

#[test]
fn span_tree_is_well_formed() {
    let mut cfg = quick_cfg();
    cfg.tracer = Tracer::new();
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let (_, metrics) = run_flow_observed(&cfg, &program, 7, &isex::engine::NullSink);

    let records = cfg.tracer.records();
    assert_eq!(cfg.tracer.dropped(), 0);
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), records.len(), "span ids are unique");
    for r in &records {
        if let Some(parent) = r.parent {
            assert!(
                ids.contains(&parent),
                "{}: dangling parent {parent}",
                r.name
            );
            assert_ne!(parent, r.id);
        }
    }
    // One engine.job span per planned job, each parented ACO rounds.
    let jobs = records.iter().filter(|r| r.name == "engine.job").count();
    assert_eq!(jobs, metrics.jobs_total);
    let job_ids: std::collections::HashSet<u64> = records
        .iter()
        .filter(|r| r.name == "engine.job")
        .map(|r| r.id)
        .collect();
    for r in records.iter().filter(|r| r.name == "aco.round") {
        assert!(
            r.parent.is_some_and(|p| job_ids.contains(&p)),
            "aco.round must be a child of engine.job"
        );
    }
}

#[test]
fn span_tree_stays_well_formed_when_jobs_panic() {
    let mut cfg = quick_cfg();
    cfg.tracer = Tracer::new();
    cfg.repeats = 4;
    cfg.fault_plan = Some(FaultPlan::parse("panic:1/3").expect("valid plan"));
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let (_, metrics) = run_flow_observed(&cfg, &program, 0xdead, &isex::engine::NullSink);
    assert!(metrics.jobs_failed > 0, "the plan must actually fire");

    // Unwinding closes spans LIFO, so even panicked jobs leave a
    // well-formed forest: unique ids, no dangling parents, and every
    // engine.job span closed (present in the records at all).
    let records = cfg.tracer.records();
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), records.len());
    for r in &records {
        if let Some(parent) = r.parent {
            assert!(
                ids.contains(&parent),
                "{}: dangling parent {parent}",
                r.name
            );
        }
    }
    let jobs = records.iter().filter(|r| r.name == "engine.job").count();
    assert_eq!(jobs, metrics.jobs_total, "panicked jobs still close spans");
}

#[test]
fn chrome_trace_round_trips_as_valid_json() {
    let mut cfg = quick_cfg();
    cfg.tracer = Tracer::new();
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let _ = run_flow(&cfg, &program, 3);

    let text = cfg.tracer.chrome_trace();
    let doc = serde_json::parse(&text).expect("chrome trace parses as JSON");
    let Value::Array(events) = doc else {
        panic!("chrome trace must be a JSON array");
    };
    let mut complete = 0usize;
    for ev in &events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        match ph {
            "M" => continue, // metadata (process/thread names)
            "X" => complete += 1,
            other => panic!("unexpected phase `{other}`"),
        }
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        assert!(ev.get("ts").and_then(Value::as_f64).is_some());
        assert!(ev.get("dur").and_then(Value::as_f64).unwrap_or(-1.0) >= 0.0);
        assert!(ev.get("pid").and_then(Value::as_u64).is_some());
        assert!(ev.get("tid").and_then(Value::as_u64).is_some());
    }
    assert_eq!(
        complete,
        cfg.tracer.records().len(),
        "every span record exports as one complete event"
    );
}

#[test]
fn phase_profile_accounts_for_the_run() {
    let mut cfg = quick_cfg();
    cfg.tracer = Tracer::new();
    cfg.params.max_iterations = 150;
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let (_, metrics) = run_flow_observed(&cfg, &program, 11, &isex::engine::NullSink);

    let profile = &metrics.phase_profile;
    assert!(!profile.0.is_empty(), "traced run must produce a profile");
    // The top-level flow spans partition the run (children like aco.round
    // nest inside flow.explore and must not be double counted here).
    let top: f64 = profile
        .0
        .iter()
        .filter(|s| {
            matches!(
                s.name.as_str(),
                "flow.explore" | "flow.patterns" | "flow.select" | "flow.replace"
            )
        })
        .map(|s| s.total_ms)
        .sum();
    let total = metrics.phases.total_ms;
    assert!(top > 0.0 && total > 0.0);
    assert!(
        top <= total * 1.10,
        "top-level spans ({top:.3}ms) exceed the run's wall time ({total:.3}ms)"
    );
    assert!(
        top >= total * 0.85,
        "top-level spans ({top:.3}ms) cover too little of the run ({total:.3}ms)"
    );
}

#[test]
fn event_seq_is_a_total_order_over_arrival() {
    let mut cfg = quick_cfg();
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let sink = VecSink::new();
    let _ = run_flow_observed(&cfg, &program, 5, &sink);
    cfg.repeats = 2;

    let events = sink.into_events();
    assert!(!events.is_empty());
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq()).collect();
    seqs.sort_unstable();
    let expect: Vec<u64> = (0..events.len() as u64).collect();
    assert_eq!(seqs, expect, "seq must be gapless 0..n over the stream");
}

#[test]
fn jsonl_events_carry_seq_in_line_order() {
    let dir = std::env::temp_dir().join(format!("isex-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    {
        let cfg = quick_cfg();
        let program = Benchmark::Bitcount.program(OptLevel::O3);
        let sink = isex::engine::JsonlSink::create(&path).unwrap();
        let _ = run_flow_observed(&cfg, &program, 9, &sink);
        sink.flush().unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let mut n = 0u64;
    for (i, line) in text.lines().enumerate() {
        let ev: isex::engine::RunEvent = serde_json::from_str(line).expect(line);
        assert_eq!(ev.seq(), i as u64, "line order must equal seq order");
        n += 1;
    }
    assert!(n > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
