//! Cross-crate invariants of the explorers: every candidate produced on
//! any workload satisfies the §4.2 formulation, and the paper's structural
//! claims hold.

use isex::dfg::{convex, ports, Reachability};
use isex::prelude::*;
use rand::SeedableRng;

fn explore_all(dfg: &ProgramDfg, machine: MachineConfig, seed: u64) -> (Exploration, Exploration) {
    let cons = Constraints::from_machine(&machine);
    let params = AcoParams {
        max_iterations: 60,
        ..AcoParams::default()
    };
    let mi = MultiIssueExplorer::with_params(machine, cons, params);
    let si = SingleIssueExplorer::with_params(machine, cons, params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = mi.explore(dfg, &mut rng);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let b = si.explore(dfg, &mut rng);
    (a, b)
}

fn check_candidates(dfg: &ProgramDfg, result: &Exploration, machine: &MachineConfig, tag: &str) {
    let reach = Reachability::compute(dfg);
    let cons = Constraints::from_machine(machine);
    let mut all_members = isex::dfg::NodeSet::new(dfg.len());
    for c in &result.candidates {
        // §4.2 constraint 1 & 2: port limits.
        let d = ports::demand(dfg, &c.nodes);
        assert!(
            d.inputs <= cons.n_in && d.outputs <= cons.n_out,
            "{tag}: {}in/{}out exceeds {}/{}",
            d.inputs,
            d.outputs,
            cons.n_in,
            cons.n_out
        );
        assert_eq!(
            (d.inputs, d.outputs),
            (c.inputs, c.outputs),
            "{tag}: recorded ports"
        );
        // §4.2 constraint 3: convexity.
        assert!(
            convex::is_convex(&c.nodes, &reach),
            "{tag}: non-convex candidate"
        );
        // §4.2 constraint 4: no loads/stores (nor branches).
        for n in &c.nodes {
            assert!(
                dfg.node(n).payload().opcode().is_ise_eligible(),
                "{tag}: ineligible op inside ISE"
            );
        }
        // Candidates of one block never overlap.
        assert!(
            !all_members.intersects(&c.nodes),
            "{tag}: overlapping candidates"
        );
        all_members.union_with(&c.nodes);
        // Latency is consistent with delay and the 10 ns cycle.
        assert_eq!(c.latency, machine.cycles_for_delay_ns(c.delay_ns), "{tag}");
        assert!(c.size() >= 2, "{tag}: singleton ISE");
        assert!(c.area_um2 > 0.0, "{tag}");
    }
}

#[test]
fn candidates_satisfy_formulation_on_all_benchmarks() {
    let machine = MachineConfig::preset_2issue_4r2w();
    for &bench in Benchmark::ALL {
        let program = bench.program(OptLevel::O3);
        let dfg = &program.hottest().dfg;
        let (mi, si) = explore_all(dfg, machine, 41);
        check_candidates(dfg, &mi, &machine, &format!("MI/{bench}"));
        check_candidates(dfg, &si, &machine, &format!("SI/{bench}"));
    }
}

#[test]
fn candidates_satisfy_formulation_on_random_dfgs() {
    use isex::workloads::random::{random_dfg, RandomDfgConfig};
    let machine = MachineConfig::preset_3issue_8r4w();
    for seed in 0..8u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dfg = random_dfg(
            &RandomDfgConfig {
                nodes: 40,
                width: 3,
                mem_fraction: 0.2,
                live_ins: 6,
            },
            &mut rng,
        );
        let (mi, _) = explore_all(&dfg, machine, seed);
        check_candidates(&dfg, &mi, &machine, &format!("random/{seed}"));
    }
}

#[test]
fn exploration_never_lengthens_the_schedule() {
    let machine = MachineConfig::preset_2issue_6r3w();
    for &bench in Benchmark::ALL {
        let program = bench.program(OptLevel::O0);
        let dfg = &program.hottest().dfg;
        let (mi, si) = explore_all(dfg, machine, 43);
        assert!(mi.cycles_with_ises <= mi.baseline_cycles, "{bench} MI");
        assert!(si.cycles_with_ises <= si.baseline_cycles, "{bench} SI");
    }
}

#[test]
fn deeper_chains_gain_more_than_wide_blocks() {
    // The paper's core premise: ISEs compress dependence chains, so a
    // serial block must benefit more than an embarrassingly parallel one
    // of the same size.
    use isex::workloads::random::{random_dfg, RandomDfgConfig};
    let machine = MachineConfig::preset_4issue_10r5w();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let serial = random_dfg(
        &RandomDfgConfig {
            nodes: 24,
            width: 1,
            mem_fraction: 0.0,
            live_ins: 2,
        },
        &mut rng,
    );
    let wide = random_dfg(
        &RandomDfgConfig {
            nodes: 24,
            width: 8,
            mem_fraction: 0.0,
            live_ins: 12,
        },
        &mut rng,
    );
    let (mi_serial, _) = explore_all(&serial, machine, 7);
    let (mi_wide, _) = explore_all(&wide, machine, 7);
    assert!(
        mi_serial.reduction() > mi_wide.reduction(),
        "serial {} vs wide {}",
        mi_serial.reduction(),
        mi_wide.reduction()
    );
}

#[test]
fn critical_path_bounds_hold() {
    // With infinite-ish resources the baseline equals the dependence
    // length, and ISEs push below it — the Fig. 1.3.1 argument.
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let dfg = &program.hottest().dfg;
    let wide = MachineConfig::new(16, 64, 32);
    let dep = isex::dfg::analysis::critical_path_len(dfg) as u32;
    let cons = Constraints::from_machine(&wide);
    let params = AcoParams {
        max_iterations: 60,
        ..AcoParams::default()
    };
    let mi = MultiIssueExplorer::with_params(wide, cons, params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let r = mi.explore(dfg, &mut rng);
    assert_eq!(
        r.baseline_cycles, dep,
        "baseline = dependence bound when resources are ample"
    );
    assert!(r.cycles_with_ises < dep, "ISEs break the dependence bound");
}
