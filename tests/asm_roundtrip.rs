//! Round-trip property: `parse_block(emit_block(dfg))` reproduces the
//! graph structure for every workload kernel and for random DFGs.

use isex::isa::parse::{emit_block, parse_block};
use isex::prelude::*;
use isex::workloads::random::{random_dfg, RandomDfgConfig};
use proptest::prelude::*;
use rand::SeedableRng;

/// Structural equality: same ops, same opcode per node, same predecessor
/// sets and same immediate operands (live-in identities may be renumbered
/// by the parser, so they are compared by position pattern).
fn assert_same_structure(a: &ProgramDfg, b: &ProgramDfg, tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: node count");
    for (id, node) in a.iter() {
        let other = b.node(id);
        assert_eq!(
            node.payload().opcode(),
            other.payload().opcode(),
            "{tag}: opcode at {id:?}"
        );
        assert_eq!(
            a.preds(id).collect::<Vec<_>>(),
            b.preds(id).collect::<Vec<_>>(),
            "{tag}: predecessors at {id:?}"
        );
        // Immediates must match exactly, position by position.
        let consts = |n: &isex::dfg::DfgNode<Operation>| {
            n.operands()
                .iter()
                .map(|op| match op {
                    Operand::Const(c) => Some(*c),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        // Loads re-associate `(base, offset)` and stores
        // `(value, base, offset)` — offsets may gain an explicit 0.
        if !node.payload().opcode().is_memory() {
            assert_eq!(consts(node), consts(other), "{tag}: immediates at {id:?}");
        }
    }
}

#[test]
fn kernels_roundtrip_through_assembly() {
    for &bench in Benchmark::ALL {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let program = bench.program(opt);
            for block in &program.blocks {
                let text = emit_block(&block.dfg);
                let back = parse_block(&text)
                    .unwrap_or_else(|e| panic!("{bench} {opt} {}: {e}\n{text}", block.name));
                assert_same_structure(&block.dfg, &back, &block.name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_dfgs_roundtrip_through_assembly(seed in any::<u64>(), nodes in 1usize..50) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dfg = random_dfg(
            &RandomDfgConfig {
                nodes,
                width: 3,
                mem_fraction: 0.2,
                live_ins: 5,
            },
            &mut rng,
        );
        let text = emit_block(&dfg);
        let back = parse_block(&text).map_err(|e| {
            TestCaseError::fail(format!("{e}\n{text}"))
        })?;
        prop_assert_eq!(back.len(), dfg.len());
        for (id, node) in dfg.iter() {
            prop_assert_eq!(node.payload().opcode(), back.node(id).payload().opcode());
            prop_assert_eq!(
                dfg.preds(id).collect::<Vec<_>>(),
                back.preds(id).collect::<Vec<_>>()
            );
        }
    }
}
