//! End-to-end integration tests: the full design flow on every benchmark,
//! both explorers, multiple machines.

use isex::flow::select::Budgets;
use isex::prelude::*;

fn quick(algorithm: Algorithm, machine: MachineConfig) -> FlowConfig {
    let mut cfg = FlowConfig::for_machine(algorithm, machine);
    cfg.repeats = 1;
    cfg.params.max_iterations = 60;
    cfg
}

#[test]
fn full_flow_runs_on_every_benchmark_and_level() {
    let machine = MachineConfig::preset_2issue_4r2w();
    for &bench in Benchmark::ALL {
        for opt in [OptLevel::O0, OptLevel::O3] {
            let program = bench.program(opt);
            let report = run_flow(&quick(Algorithm::MultiIssue, machine), &program, 1);
            assert!(report.cycles_before > 0, "{bench} {opt}");
            assert!(
                report.cycles_after <= report.cycles_before,
                "{bench} {opt}: replacement must never hurt"
            );
            // Selected patterns satisfy the §4.2 port constraints.
            for sel in &report.selected {
                assert!(sel.pattern.inputs <= machine.read_ports);
                assert!(sel.pattern.outputs <= machine.write_ports);
                assert!(sel.pattern.size() >= 2);
                // No memory operation ever enters an ISE.
                for op in &sel.pattern.ops {
                    assert!(op.opcode.is_ise_eligible(), "{bench}: {} in ISE", op.opcode);
                }
            }
        }
    }
}

#[test]
fn every_benchmark_gains_from_ises_at_o3() {
    // The kernels were chosen because their hot paths are ISE-friendly;
    // the MI flow must find real savings on each of them.
    let machine = MachineConfig::preset_2issue_6r3w();
    for &bench in Benchmark::ALL {
        let program = bench.program(OptLevel::O3);
        let report = run_flow(&quick(Algorithm::MultiIssue, machine), &program, 3);
        assert!(
            report.reduction() > 0.0,
            "{bench}: expected a positive reduction, got {}",
            report.reduction()
        );
    }
}

#[test]
fn si_baseline_runs_on_every_benchmark() {
    let machine = MachineConfig::preset_2issue_4r2w();
    for &bench in Benchmark::ALL {
        let program = bench.program(OptLevel::O3);
        let report = run_flow(&quick(Algorithm::SingleIssue, machine), &program, 5);
        assert!(report.cycles_after <= report.cycles_before, "{bench}");
    }
}

#[test]
fn all_machine_presets_work() {
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    for (label, machine) in MachineConfig::evaluation_presets() {
        let report = run_flow(&quick(Algorithm::MultiIssue, machine), &program, 7);
        assert!(
            report.reduction() >= 0.0 && report.reduction() < 1.0,
            "{label}: reduction {}",
            report.reduction()
        );
    }
}

#[test]
fn area_budgets_are_respected_end_to_end() {
    let machine = MachineConfig::preset_2issue_4r2w();
    let program = Benchmark::Adpcm.program(OptLevel::O3);
    for budget in [0.0, 5_000.0, 50_000.0] {
        let mut cfg = quick(Algorithm::MultiIssue, machine);
        cfg.budgets = Budgets {
            area_um2: Some(budget),
            max_ises: None,
        };
        let report = run_flow(&cfg, &program, 11);
        assert!(
            report.total_area <= budget + 1e-9,
            "budget {budget}: used {}",
            report.total_area
        );
    }
}

#[test]
fn ise_count_budget_is_respected_end_to_end() {
    let machine = MachineConfig::preset_2issue_6r3w();
    let program = Benchmark::Dijkstra.program(OptLevel::O3);
    for max in [0usize, 1, 3] {
        let mut cfg = quick(Algorithm::MultiIssue, machine);
        cfg.budgets = Budgets {
            area_um2: None,
            max_ises: Some(max),
        };
        let report = run_flow(&cfg, &program, 13);
        assert!(report.selected.len() <= max);
    }
}

#[test]
fn reduction_is_monotone_in_area_budget() {
    let machine = MachineConfig::preset_2issue_4r2w();
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let cfg0 = quick(Algorithm::MultiIssue, machine);
    let (patterns, explored, iters) = isex::flow::flow::explore_program(&cfg0, &program, 17);
    let mut last = -1.0f64;
    for budget in [0.0, 10_000.0, 40_000.0, 160_000.0] {
        let mut cfg = cfg0.clone();
        cfg.budgets = Budgets {
            area_um2: Some(budget),
            max_ises: None,
        };
        let report =
            isex::flow::flow::finish_flow(&cfg, &program, patterns.clone(), explored, iters);
        assert!(
            report.reduction() >= last - 1e-9,
            "budget {budget}: {} < {last}",
            report.reduction()
        );
        last = report.reduction();
    }
}

#[test]
fn whole_flow_is_deterministic_per_seed() {
    let machine = MachineConfig::preset_3issue_6r3w();
    let program = Benchmark::Fft.program(OptLevel::O3);
    let cfg = quick(Algorithm::MultiIssue, machine);
    let a = run_flow(&cfg, &program, 23);
    let b = run_flow(&cfg, &program, 23);
    assert_eq!(a.cycles_after, b.cycles_after);
    assert_eq!(a.total_area, b.total_area);
    assert_eq!(a.selected.len(), b.selected.len());
}

#[test]
fn per_block_accounting_sums_to_totals() {
    let machine = MachineConfig::preset_2issue_4r2w();
    let program = Benchmark::Blowfish.program(OptLevel::O0);
    let report = run_flow(&quick(Algorithm::MultiIssue, machine), &program, 29);
    let before: u64 = report
        .per_block
        .iter()
        .map(|b| b.cycles_before as u64 * b.exec_count)
        .sum();
    let after: u64 = report
        .per_block
        .iter()
        .map(|b| b.cycles_after as u64 * b.exec_count)
        .sum();
    assert_eq!(before, report.cycles_before);
    assert_eq!(after, report.cycles_after);
}
