//! Property-based tests (proptest) over the core data structures and
//! algorithms, driven by randomly generated DFGs.

use isex::dfg::{analysis, convex, ports, NodeId, NodeSet, Reachability};
use isex::prelude::*;
use isex::sched::collapse::{collapse, IseUnit};
use isex::sched::{timing, unit};
use isex::workloads::random::{random_dfg, RandomDfgConfig};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_dfg() -> impl Strategy<Value = ProgramDfg> {
    (1usize..60, 1usize..6, 0u8..40, 1usize..8, any::<u64>()).prop_map(
        |(nodes, width, memf, live_ins, seed)| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            random_dfg(
                &RandomDfgConfig {
                    nodes,
                    width,
                    mem_fraction: memf as f64 / 100.0,
                    live_ins,
                },
                &mut rng,
            )
        },
    )
}

fn arb_subset(k: usize, seed: u64) -> NodeSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut s = NodeSet::new(k);
    for i in 0..k {
        if rand::Rng::gen_bool(&mut rng, 0.4) {
            s.insert(NodeId::new(i as u32));
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn convexity_matches_bruteforce(dfg in arb_dfg(), seed in any::<u64>()) {
        let reach = Reachability::compute(&dfg);
        let set = arb_subset(dfg.len(), seed);
        // Brute force: for all (u, v) in S, any intermediate node on a
        // path u -> w -> v with w outside S disproves convexity.
        let mut brute = true;
        'outer: for u in &set {
            for v in &set {
                for w in dfg.node_ids() {
                    if !set.contains(w) && reach.reaches(u, w) && reach.reaches(w, v) {
                        brute = false;
                        break 'outer;
                    }
                }
            }
        }
        prop_assert_eq!(convex::is_convex(&set, &reach), brute);
    }

    #[test]
    fn make_convex_outputs_are_convex_partition(dfg in arb_dfg(), seed in any::<u64>()) {
        let reach = Reachability::compute(&dfg);
        let set = arb_subset(dfg.len(), seed);
        let parts = convex::make_convex(&dfg, &set, &reach);
        let mut union = NodeSet::new(dfg.len());
        for p in &parts {
            prop_assert!(convex::is_convex(p, &reach));
            prop_assert!(!p.is_empty());
            prop_assert!(!union.intersects(p), "parts must be disjoint");
            union.union_with(p);
        }
        prop_assert_eq!(union, set, "partition covers exactly the input");
    }

    #[test]
    fn port_counts_match_naive(dfg in arb_dfg(), seed in any::<u64>()) {
        let set = arb_subset(dfg.len(), seed);
        let d = ports::demand(&dfg, &set);
        // Naive recount with hash sets.
        use std::collections::HashSet;
        let mut ins: HashSet<String> = HashSet::new();
        let mut outs = 0usize;
        for n in &set {
            for op in dfg.node(n).operands() {
                match *op {
                    Operand::Node(p) if !set.contains(p) => {
                        ins.insert(format!("n{}", p.index()));
                    }
                    Operand::LiveIn(v) => {
                        ins.insert(format!("v{}", v.index()));
                    }
                    _ => {}
                }
            }
            if dfg.node(n).is_live_out() || dfg.succs(n).any(|s| !set.contains(s)) {
                outs += 1;
            }
        }
        prop_assert_eq!(d.inputs, ins.len());
        prop_assert_eq!(d.outputs, outs);
    }

    #[test]
    fn list_schedule_is_valid_and_bounded(dfg in arb_dfg()) {
        let sched_dfg = unit::lower(&dfg);
        for machine in [
            MachineConfig::preset_2issue_4r2w(),
            MachineConfig::preset_4issue_10r5w(),
        ] {
            let s = list_schedule(&sched_dfg, &machine, Priority::Height);
            // Dependences hold.
            for (id, _) in sched_dfg.iter() {
                for p in sched_dfg.preds(id) {
                    prop_assert!(
                        s.start_of(p) + sched_dfg.node(p).payload().latency <= s.start_of(id)
                    );
                }
            }
            // Bounded below by the dependence-only length, above by serial.
            prop_assert!(s.length >= timing::dep_length(&sched_dfg));
            let serial: u32 = sched_dfg.iter().map(|(_, n)| n.payload().latency).sum();
            prop_assert!(s.length <= serial.max(1));
            // Per-cycle issue width respected.
            let mut per_cycle = std::collections::HashMap::new();
            for (id, _) in sched_dfg.iter() {
                *per_cycle.entry(s.start_of(id)).or_insert(0usize) += 1;
            }
            for (_, count) in per_cycle {
                prop_assert!(count <= machine.issue_width);
            }
        }
    }

    #[test]
    fn collapse_preserves_external_interface(dfg in arb_dfg(), seed in any::<u64>()) {
        // Pick one convex, legal set; collapsing must keep the quotient
        // acyclic and preserve live-out reachability counts.
        let reach = Reachability::compute(&dfg);
        let raw = arb_subset(dfg.len(), seed);
        let parts = convex::make_convex(&dfg, &raw, &reach);
        let Some(set) = parts.into_iter().find(|p| p.len() >= 2) else {
            return Ok(());
        };
        let sched_dfg = unit::lower(&dfg);
        let before_live_outs = sched_dfg
            .iter()
            .filter(|(_, n)| n.is_live_out())
            .count();
        let covered_live_outs = set
            .iter()
            .filter(|&n| sched_dfg.node(n).is_live_out())
            .count();
        let out = collapse(
            &sched_dfg,
            &[IseUnit {
                nodes: set.clone(),
                op: SchedOp::new(1, 4, 2, UnitClass::Asfu),
            }],
        );
        prop_assert_eq!(out.dfg.len(), dfg.len() - set.len() + 1);
        let after_live_outs = out.dfg.iter().filter(|(_, n)| n.is_live_out()).count();
        // All covered live-outs merge into (at most) one.
        let expected = before_live_outs - covered_live_outs
            + usize::from(covered_live_outs > 0);
        prop_assert_eq!(after_live_outs, expected);
    }

    #[test]
    fn exploration_invariants_on_random_graphs(dfg in arb_dfg(), seed in any::<u64>()) {
        let machine = MachineConfig::preset_2issue_4r2w();
        let cons = Constraints::from_machine(&machine);
        let params = AcoParams {
            max_iterations: 12, // keep proptest fast
            ..AcoParams::default()
        };
        let mi = MultiIssueExplorer::with_params(machine, cons, params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = mi.explore(&dfg, &mut rng);
        prop_assert!(r.cycles_with_ises <= r.baseline_cycles);
        let reach = Reachability::compute(&dfg);
        for c in &r.candidates {
            prop_assert!(c.size() >= 2);
            prop_assert!(convex::is_convex(&c.nodes, &reach));
            let d = ports::demand(&dfg, &c.nodes);
            prop_assert!(d.inputs <= cons.n_in && d.outputs <= cons.n_out);
            for n in &c.nodes {
                prop_assert!(dfg.node(n).payload().opcode().is_ise_eligible());
            }
        }
    }

    #[test]
    fn max_aec_never_below_span(dfg in arb_dfg(), seed in any::<u64>()) {
        let sched_dfg = unit::lower(&dfg);
        let set = arb_subset(dfg.len(), seed);
        if set.is_empty() {
            return Ok(());
        }
        let deadline = timing::dep_length(&sched_dfg) + 5;
        let aec = timing::max_aec(&sched_dfg, &set, deadline);
        // The window always covers the subgraph's own dependence span.
        let span = {
            let asap = timing::asap(&sched_dfg);
            let lo = set.iter().map(|n| asap[n.index()]).min().unwrap_or(0);
            let hi = set
                .iter()
                .map(|n| asap[n.index()] + sched_dfg.node(n).payload().latency)
                .max()
                .unwrap_or(0);
            hi - lo
        };
        prop_assert!(aec >= span, "aec {} < span {}", aec, span);
    }

    #[test]
    fn reachability_is_transitive(dfg in arb_dfg()) {
        let reach = Reachability::compute(&dfg);
        for u in dfg.node_ids() {
            for v in dfg.succs(u) {
                prop_assert!(reach.reaches(u, v));
                for w in reach.descendants(v).iter().take(8) {
                    prop_assert!(reach.reaches(u, w), "transitivity");
                }
            }
        }
    }

    #[test]
    fn weighted_path_at_least_max_node(dfg in arb_dfg(), seed in any::<u64>()) {
        let set = arb_subset(dfg.len(), seed);
        let w = analysis::weighted_longest_path_within(&dfg, &set, |_, _| 2.5);
        prop_assert_eq!(w, 2.5 * chain_len(&dfg, &set) as f64);
    }
}

/// Longest unit chain within `set` (independent re-implementation used to
/// cross-check the weighted path).
fn chain_len(dfg: &ProgramDfg, set: &NodeSet) -> usize {
    let mut depth = vec![0usize; dfg.len()];
    let mut best = 0;
    for (id, _) in dfg.iter() {
        if !set.contains(id) {
            continue;
        }
        let d = dfg
            .preds(id)
            .filter(|p| set.contains(*p))
            .map(|p| depth[p.index()])
            .max()
            .unwrap_or(0)
            + 1;
        depth[id.index()] = d;
        best = best.max(d);
    }
    best
}
