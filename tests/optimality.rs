//! Optimality oracle tests: on blocks small enough for exhaustive search,
//! the ACO explorer must land close to the exact optimum.

use isex::core::ExactExplorer;
use isex::prelude::*;
use isex::workloads::random::{random_dfg, RandomDfgConfig};
use rand::SeedableRng;

fn small_block(seed: u64) -> ProgramDfg {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_dfg(
        &RandomDfgConfig {
            nodes: 14,
            width: 2,
            mem_fraction: 0.1,
            live_ins: 4,
        },
        &mut rng,
    )
}

#[test]
fn aco_tracks_the_exact_single_ise_optimum() {
    let machine = MachineConfig::preset_2issue_4r2w();
    let cons = Constraints::from_machine(&machine);
    let exact = ExactExplorer::new(machine, cons);
    let params = AcoParams {
        max_iterations: 120,
        ..AcoParams::default()
    };
    let aco = MultiIssueExplorer::with_params(machine, cons, params);

    let mut optimal_total = 0u32;
    let mut aco_total = 0u32;
    let mut instances = 0;
    for seed in 0..12u64 {
        let dfg = small_block(seed);
        let Ok(best) = exact.best_single_ise(&dfg) else {
            continue;
        };
        let Some(best) = best else { continue };
        instances += 1;
        optimal_total += best.saved_cycles;
        // The paper explores each block five times and keeps the best
        // (§5.1); the oracle comparison uses the same protocol.
        let first = (0..5u64)
            .map(|rep| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xACE ^ (rep << 40));
                let result = aco.explore(&dfg, &mut rng);
                result
                    .candidates
                    .first()
                    .map(|c| c.saved_cycles)
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        // The oracle enumerates *connected* single ISEs; the multi-issue
        // explorer may legally beat it by packing parallel (disconnected)
        // chains into one ISE, or via leave-one-out gains measured in the
        // context of further commits. Cap each case at the oracle value so
        // the ratio below stays a lower-bound comparison.
        aco_total += first.min(best.saved_cycles);
    }
    assert!(
        instances >= 6,
        "need enough solvable instances, got {instances}"
    );
    let ratio = aco_total as f64 / optimal_total as f64;
    assert!(
        ratio >= 0.7,
        "ACO reaches only {:.0}% of the single-ISE optimum ({aco_total}/{optimal_total})",
        ratio * 100.0
    );
}

#[test]
fn multi_round_aco_beats_the_single_ise_optimum_overall() {
    // With several rounds the heuristic's *total* saving should generally
    // reach at least the best single ISE's saving.
    let machine = MachineConfig::preset_2issue_6r3w();
    let cons = Constraints::from_machine(&machine);
    let exact = ExactExplorer::new(machine, cons);
    let params = AcoParams {
        max_iterations: 120,
        ..AcoParams::default()
    };
    let aco = MultiIssueExplorer::with_params(machine, cons, params);

    let mut wins = 0usize;
    let mut cases = 0usize;
    for seed in 20..32u64 {
        let dfg = small_block(seed);
        let Ok(Some(best)) = exact.best_single_ise(&dfg) else {
            continue;
        };
        cases += 1;
        let total_saved = (0..5u64)
            .map(|rep| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (rep << 40));
                let result = aco.explore(&dfg, &mut rng);
                result.baseline_cycles - result.cycles_with_ises
            })
            .max()
            .unwrap_or(0);
        if total_saved >= best.saved_cycles {
            wins += 1;
        }
    }
    assert!(cases >= 5);
    // Measured: ~8/12 with best-of-5 — the heuristic is good but not
    // exhaustive; this floor guards against regressions, not perfection.
    assert!(
        wins * 100 >= cases * 60,
        "multi-round ACO matched the single-ISE optimum in only {wins}/{cases} cases"
    );
}
