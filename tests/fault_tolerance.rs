//! End-to-end fault-tolerance tests over the whole flow: deterministic
//! fault injection ([`FaultPlan`]), panic isolation + worker supervision,
//! and checkpoint/resume.
//!
//! The `FAULT_PLAN` environment variable overrides the default plan for
//! the invariant tests, so CI can sweep a matrix of plans over the same
//! assertions: whatever the plan, accounting must balance, results must be
//! deterministic, and undamaged blocks must be untouched.

use isex::flow::{run_flow_checkpointed, CancelToken, FaultPlan};
use isex::prelude::*;

fn base_config() -> FlowConfig {
    let mut cfg =
        FlowConfig::for_machine(Algorithm::MultiIssue, MachineConfig::preset_2issue_4r2w());
    cfg.params.max_iterations = 40;
    cfg.repeats = 2;
    cfg.jobs = 2;
    cfg
}

fn config_with_plan(plan: Option<&str>) -> FlowConfig {
    let mut cfg = base_config();
    cfg.fault_plan = plan.map(|spec| FaultPlan::parse(spec).expect("valid plan"));
    cfg
}

fn report_json(report: &FlowReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The plan under test: `FAULT_PLAN` from the environment (the CI matrix
/// sets e.g. `panic:1/3 delay:1/5`), or a mixed default.
fn env_plan() -> String {
    std::env::var("FAULT_PLAN").unwrap_or_else(|_| "panic:1/3 delay:1/5:1ms".to_string())
}

#[test]
fn any_fault_plan_keeps_the_accounting_balanced() {
    let spec = env_plan();
    let mut cfg = config_with_plan(Some(&spec));
    cfg.repeats = 4; // enough jobs for ratio rules to actually fire
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let (_, m) = run_flow_observed(&cfg, &program, 0xF417, &NullSink);

    assert_eq!(
        m.jobs_completed + m.jobs_failed,
        m.jobs_total,
        "plan `{spec}`: every planned job must be accounted for"
    );
    assert_eq!(
        m.worker_restarts, m.jobs_failed,
        "plan `{spec}`: one supervised restart per isolated panic"
    );
    assert_eq!(m.jobs_total, m.blocks_explored * cfg.repeats);
    for failure in &m.block_failures {
        assert_eq!(
            failure.repeats_failed, cfg.repeats,
            "a block failure means *every* repeat died"
        );
        assert!(!failure.error.is_empty());
    }
}

#[test]
fn fault_injection_is_deterministic_across_runs() {
    let spec = env_plan();
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let run = || run_flow_observed(&config_with_plan(Some(&spec)), &program, 0xD3, &NullSink);
    let (report_a, metrics_a) = run();
    let (report_b, metrics_b) = run();

    assert_eq!(
        report_json(&report_a),
        report_json(&report_b),
        "plan `{spec}`: same plan, same seed, same answer"
    );
    assert_eq!(metrics_a.jobs_failed, metrics_b.jobs_failed);
    assert_eq!(metrics_a.worker_restarts, metrics_b.worker_restarts);
    assert_eq!(metrics_a.block_failures, metrics_b.block_failures);
    assert_eq!(metrics_a.block_spread, metrics_b.block_spread);
}

#[test]
fn targeted_panic_fails_one_block_and_leaves_the_rest_bitwise_intact() {
    // One repeat per block: panicking (block 0, repeat 0) kills block 0
    // outright while every other block's exploration must be untouched.
    let mut clean_cfg = config_with_plan(None);
    clean_cfg.repeats = 1;
    let mut fault_cfg = config_with_plan(Some("panic@0.0"));
    fault_cfg.repeats = 1;
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let seed = 0x1507;

    let (_, clean) = run_flow_observed(&clean_cfg, &program, seed, &NullSink);
    let (_, faulted) = run_flow_observed(&fault_cfg, &program, seed, &NullSink);

    assert!(clean.blocks_explored >= 2, "need a victim and survivors");
    assert_eq!(faulted.jobs_failed, 1);
    assert!(faulted.worker_restarts >= 1);
    assert_eq!(faulted.block_failures.len(), 1);
    let failure = &faulted.block_failures[0];
    assert_eq!(failure.block_index, 0);
    assert!(
        failure
            .error
            .contains("injected fault: panic at block=0 repeat=0"),
        "{}",
        failure.error
    );

    // The surviving blocks' explorations are bitwise identical to the
    // clean run's: per-job seeds come from canonical block indices, so a
    // neighbour's panic cannot perturb them.
    assert_eq!(clean.block_spread.len(), faulted.block_spread.len() + 1);
    assert_eq!(
        faulted.block_spread,
        clean.block_spread[1..],
        "survivors must not feel block 0's panic"
    );
    assert_eq!(faulted.jobs_completed, clean.jobs_completed - 1);
}

#[test]
fn delay_faults_never_change_the_answer() {
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let (clean_report, clean) =
        run_flow_observed(&config_with_plan(None), &program, 0xDE1A7, &NullSink);
    let (slow_report, slow) = run_flow_observed(
        &config_with_plan(Some("delay:1/1:2ms")),
        &program,
        0xDE1A7,
        &NullSink,
    );
    assert_eq!(report_json(&clean_report), report_json(&slow_report));
    assert_eq!(slow.jobs_failed, 0);
    assert_eq!(clean.block_spread, slow.block_spread);
}

#[test]
fn interrupted_checkpoint_resume_is_bitwise_equal_to_a_fresh_run() {
    let path = std::env::temp_dir().join(format!(
        "isex-fault-tolerance-ckpt-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let cfg = base_config();
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let seed = 0x2e54;
    let cancel = CancelToken::new();

    let (plain_report, plain_metrics) = run_flow_observed(&cfg, &program, seed, &NullSink);

    // A full checkpointed run journals one entry per explored block and
    // reproduces the plain run exactly.
    let (full_report, full_metrics) =
        run_flow_checkpointed(&cfg, &program, seed, &NullSink, &cancel, &path)
            .expect("checkpointed run");
    assert_eq!(report_json(&full_report), report_json(&plain_report));
    assert_eq!(full_metrics.blocks_resumed, 0);
    let journal = std::fs::read_to_string(&path).expect("journal exists");
    assert_eq!(
        journal.lines().count(),
        plain_metrics.blocks_explored,
        "one journal line per explored block"
    );

    // Simulate a crash mid-run: keep the first block's entry, plus a torn
    // tail from an append that died between write and flush.
    let first_line = journal.lines().next().expect("at least one entry");
    std::fs::write(&path, format!("{first_line}\n{{\"run_key\":\"torn")).expect("truncate journal");

    let (resumed_report, resumed_metrics) =
        run_flow_checkpointed(&cfg, &program, seed, &NullSink, &cancel, &path)
            .expect("resumed run");
    assert_eq!(
        report_json(&resumed_report),
        report_json(&plain_report),
        "resume must be bitwise equal to an uninterrupted run"
    );
    assert_eq!(resumed_metrics.blocks_resumed, 1, "one block was journaled");
    assert_eq!(
        resumed_metrics.blocks_explored,
        plain_metrics.blocks_explored
    );
    assert_eq!(resumed_metrics.jobs_completed, plain_metrics.jobs_completed);
    assert_eq!(resumed_metrics.block_spread, plain_metrics.block_spread);

    // The rewritten journal is complete again: a third run resumes
    // everything and re-explores nothing.
    let (rerun_report, rerun_metrics) =
        run_flow_checkpointed(&cfg, &program, seed, &NullSink, &cancel, &path)
            .expect("fully-resumed run");
    assert_eq!(report_json(&rerun_report), report_json(&plain_report));
    assert_eq!(rerun_metrics.blocks_resumed, plain_metrics.blocks_explored);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpointed_run_under_faults_journals_the_failure() {
    // A panic that kills a whole block must be recorded in the journal —
    // resume trusts the journal, so a failed block is resumed as failed,
    // not silently retried into a different answer.
    let path = std::env::temp_dir().join(format!(
        "isex-fault-tolerance-faulty-ckpt-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut cfg = config_with_plan(Some("panic@0.0"));
    cfg.repeats = 1;
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let cancel = CancelToken::new();

    let (report, metrics) = run_flow_checkpointed(&cfg, &program, 9, &NullSink, &cancel, &path)
        .expect("faulty checkpointed run");
    assert_eq!(metrics.block_failures.len(), 1);

    let (resumed_report, resumed_metrics) =
        run_flow_checkpointed(&cfg, &program, 9, &NullSink, &cancel, &path)
            .expect("resume of faulty run");
    assert_eq!(report_json(&resumed_report), report_json(&report));
    assert_eq!(resumed_metrics.blocks_resumed, metrics.blocks_explored);
    assert_eq!(
        resumed_metrics.block_failures, metrics.block_failures,
        "the journaled failure must survive resume"
    );

    let _ = std::fs::remove_file(&path);
}
