//! Hot-path evaluation-layer regression tests: the round-scoped cache,
//! one-shot lowering and the incremental-timing/SoA fast path must be pure
//! wall-clock optimisations — legacy, cached, and incremental runs produce
//! bitwise-identical reports at every seed and worker count — while actually
//! earning hits (and skipped timing passes) on converging workloads.

use std::sync::Arc;

use isex::core::EvalStats;
use isex::prelude::*;
use rand::SeedableRng;

fn quick_cfg(eval_cache: bool, incremental: bool, jobs: usize) -> FlowConfig {
    let mut cfg =
        FlowConfig::for_machine(Algorithm::MultiIssue, MachineConfig::preset_2issue_4r2w());
    cfg.repeats = 2;
    cfg.jobs = jobs;
    cfg.params.max_iterations = 40;
    cfg.eval_cache = eval_cache;
    cfg.incremental = incremental;
    cfg
}

/// The three evaluation paths — legacy (no cache), eval-cache with full
/// timing passes, and eval-cache with incremental timing over the SoA
/// quotient — must agree byte-for-byte on the serialized report.
#[test]
fn all_three_eval_paths_are_bitwise_identical() {
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    for seed in [3u64, 11, 29] {
        for jobs in [1usize, 4] {
            let legacy = run_flow(&quick_cfg(false, false, jobs), &program, seed);
            let cached = run_flow(&quick_cfg(true, false, jobs), &program, seed);
            let incremental = run_flow(&quick_cfg(true, true, jobs), &program, seed);
            let legacy = serde_json::to_string(&legacy).unwrap();
            let cached = serde_json::to_string(&cached).unwrap();
            let incremental = serde_json::to_string(&incremental).unwrap();
            assert_eq!(
                cached, legacy,
                "seed {seed} jobs {jobs}: the eval cache changed the result"
            );
            assert_eq!(
                incremental, legacy,
                "seed {seed} jobs {jobs}: incremental timing changed the result"
            );
        }
    }
}

#[test]
fn cache_counters_surface_in_phase_profile() {
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let (_, metrics) = run_flow_observed(&quick_cfg(true, true, 1), &program, 7, &NullSink);
    let hit = metrics
        .phase_profile
        .get("eval.cache_hit")
        .expect("cached run must report eval.cache_hit");
    let miss = metrics
        .phase_profile
        .get("eval.cache_miss")
        .expect("cached run must report eval.cache_miss");
    assert!(miss.count > 0, "every round's first walk is a miss");
    assert!(
        hit.count > 0,
        "a converging ACO must resample walks: {} hits / {} misses",
        hit.count,
        miss.count
    );
    let saved = metrics
        .phase_profile
        .get("timing.asap_saved")
        .expect("cached run must report skipped ASAP passes");
    // Every walk-evaluation miss derives ALAP (and the walk deadline) from
    // the ASAP numbers in hand — two skipped passes each. `eval.cache_miss`
    // also counts candidate-length misses, so `<=` rather than equality.
    assert!(
        saved.count > 0 && saved.count % 2 == 0 && saved.count <= 2 * miss.count,
        "{} skipped passes vs {} misses",
        saved.count,
        miss.count
    );
    let copied = metrics
        .phase_profile
        .get("timing.incr_copied")
        .expect("incremental run must report copied vertices");
    let recomputed = metrics
        .phase_profile
        .get("timing.incr_recomputed")
        .expect("incremental run must report recomputed vertices");
    assert!(
        copied.count > 0 && recomputed.count > 0,
        "cone updates must both copy and recompute: {} copied / {} recomputed",
        copied.count,
        recomputed.count
    );

    let (_, metrics) = run_flow_observed(&quick_cfg(false, false, 1), &program, 7, &NullSink);
    assert!(
        metrics.phase_profile.get("eval.cache_hit").is_none()
            && metrics.phase_profile.get("eval.cache_miss").is_none(),
        "a cache-disabled run must not report cache counters"
    );
    assert!(
        metrics.phase_profile.get("timing.incr_copied").is_none()
            && metrics
                .phase_profile
                .get("timing.incr_recomputed")
                .is_none(),
        "a cache-disabled run must not report incremental counters"
    );
}

#[test]
fn explorer_records_hits_on_a_converging_workload() {
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let block = program.hottest();
    let machine = MachineConfig::preset_2issue_4r2w();
    let mut explorer = MultiIssueExplorer::new(machine, Constraints::from_machine(&machine));
    let stats = Arc::new(EvalStats::default());
    explorer.eval_stats = Some(Arc::clone(&stats));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2008);
    let result = explorer.explore(&block.dfg, &mut rng);
    assert!(result.cycles_with_ises <= result.baseline_cycles);
    assert!(stats.misses() > 0, "each distinct walk costs one analysis");
    assert!(
        stats.hits() > 0,
        "near convergence the ants resample identical walks; the cache must hit"
    );
    let rate = stats.hits() as f64 / (stats.hits() + stats.misses()) as f64;
    assert!(
        rate > 0.0 && rate < 1.0,
        "hit rate {rate} must be a real fraction"
    );
}
