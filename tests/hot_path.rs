//! Hot-path evaluation-layer regression tests: the round-scoped cache and
//! one-shot lowering must be a pure wall-clock optimisation — cached and
//! cache-disabled runs produce bitwise-identical reports at every seed and
//! worker count — while actually earning hits on converging workloads.

use std::sync::Arc;

use isex::core::EvalStats;
use isex::prelude::*;
use rand::SeedableRng;

fn quick_cfg(eval_cache: bool, jobs: usize) -> FlowConfig {
    let mut cfg =
        FlowConfig::for_machine(Algorithm::MultiIssue, MachineConfig::preset_2issue_4r2w());
    cfg.repeats = 2;
    cfg.jobs = jobs;
    cfg.params.max_iterations = 40;
    cfg.eval_cache = eval_cache;
    cfg
}

#[test]
fn cached_and_uncached_reports_are_bitwise_identical() {
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    for seed in [3u64, 11, 29] {
        for jobs in [1usize, 4] {
            let cached = run_flow(&quick_cfg(true, jobs), &program, seed);
            let legacy = run_flow(&quick_cfg(false, jobs), &program, seed);
            assert_eq!(
                serde_json::to_string(&cached).unwrap(),
                serde_json::to_string(&legacy).unwrap(),
                "seed {seed} jobs {jobs}: the eval cache changed the result"
            );
        }
    }
}

#[test]
fn cache_counters_surface_in_phase_profile() {
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let (_, metrics) = run_flow_observed(&quick_cfg(true, 1), &program, 7, &NullSink);
    let hit = metrics
        .phase_profile
        .get("eval.cache_hit")
        .expect("cached run must report eval.cache_hit");
    let miss = metrics
        .phase_profile
        .get("eval.cache_miss")
        .expect("cached run must report eval.cache_miss");
    assert!(miss.count > 0, "every round's first walk is a miss");
    assert!(
        hit.count > 0,
        "a converging ACO must resample walks: {} hits / {} misses",
        hit.count,
        miss.count
    );

    let (_, metrics) = run_flow_observed(&quick_cfg(false, 1), &program, 7, &NullSink);
    assert!(
        metrics.phase_profile.get("eval.cache_hit").is_none()
            && metrics.phase_profile.get("eval.cache_miss").is_none(),
        "a cache-disabled run must not report cache counters"
    );
}

#[test]
fn explorer_records_hits_on_a_converging_workload() {
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let block = program.hottest();
    let machine = MachineConfig::preset_2issue_4r2w();
    let mut explorer = MultiIssueExplorer::new(machine, Constraints::from_machine(&machine));
    let stats = Arc::new(EvalStats::default());
    explorer.eval_stats = Some(Arc::clone(&stats));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2008);
    let result = explorer.explore(&block.dfg, &mut rng);
    assert!(result.cycles_with_ises <= result.baseline_cycles);
    assert!(stats.misses() > 0, "each distinct walk costs one analysis");
    assert!(
        stats.hits() > 0,
        "near convergence the ants resample identical walks; the cache must hit"
    );
    let rate = stats.hits() as f64 / (stats.hits() + stats.misses()) as f64;
    assert!(
        rate > 0.0 && rate < 1.0,
        "hit rate {rate} must be a real fraction"
    );
}
