//! Regression locks on the evaluation's *shapes* (EXPERIMENTS.md): these
//! run at quick effort so CI catches a regression in any of the paper's
//! qualitative claims.

use isex::flow::experiment::{self, ConfigPoint, SweepEffort, ISE_COUNTS};
use isex::prelude::*;

fn point(algorithm: Algorithm, opt: OptLevel) -> ConfigPoint {
    ConfigPoint {
        label: format!("{algorithm}(4/2, 2IS, {opt})"),
        machine: MachineConfig::preset_2issue_4r2w(),
        opt,
        algorithm,
    }
}

#[test]
fn mi_is_more_area_efficient_than_si() {
    // Fig. 5.2.3's core claim, at every ISE-count budget: MI buys at least
    // as much reduction per µm². Measured area may be zero when nothing is
    // selected, so compare aggregate (reduction, area) pairs.
    let effort = SweepEffort {
        repeats: 2,
        max_iterations: 80,
        jobs: 0,
    };
    let mi = experiment::ise_count_sweep(
        &point(Algorithm::MultiIssue, OptLevel::O3),
        Benchmark::ALL,
        &effort,
        0xF16,
    );
    let si = experiment::ise_count_sweep(
        &point(Algorithm::SingleIssue, OptLevel::O3),
        Benchmark::ALL,
        &effort,
        0xF16,
    );
    let agg = |ms: &[experiment::Measurement], count: usize| -> (f64, f64) {
        let xs: Vec<&experiment::Measurement> =
            ms.iter().filter(|m| m.constraint == count as f64).collect();
        let red = xs.iter().map(|m| m.reduction).sum::<f64>() / xs.len() as f64;
        let area = xs.iter().map(|m| m.area_um2).sum::<f64>() / xs.len() as f64;
        (red, area)
    };
    let mut mi_wins = 0usize;
    for &c in ISE_COUNTS {
        let (mr, ma) = agg(&mi, c);
        let (sr, sa) = agg(&si, c);
        // Efficiency: reduction per area (guard against zero areas).
        let me = mr / ma.max(1.0);
        let se = sr / sa.max(1.0);
        if me >= se {
            mi_wins += 1;
        }
    }
    assert!(
        mi_wins >= ISE_COUNTS.len() - 1,
        "MI must be the more area-efficient explorer ({mi_wins}/{} budgets)",
        ISE_COUNTS.len()
    );
}

#[test]
fn first_ise_dominates_the_reduction() {
    // Fig. 5.2.3 / §5.2: "most of [the] execution time reduction is
    // dominated by several ISEs, especially [the] first ISE".
    let effort = SweepEffort {
        repeats: 2,
        max_iterations: 80,
        jobs: 0,
    };
    let ms = experiment::ise_count_sweep(
        &point(Algorithm::MultiIssue, OptLevel::O3),
        Benchmark::ALL,
        &effort,
        0xF17,
    );
    let avg = |count: usize| -> f64 {
        let xs: Vec<f64> = ms
            .iter()
            .filter(|m| m.constraint == count as f64)
            .map(|m| m.reduction)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let one = avg(1);
    let full = avg(32);
    assert!(one > 0.0);
    assert!(
        one >= 0.3 * full,
        "first ISE should carry a large share: {one:.3} of {full:.3}"
    );
    // And saturation: 8 → 32 gains (almost) nothing.
    assert!(avg(32) - avg(8) < 0.05);
}

#[test]
fn o3_beats_o0_at_two_issue() {
    // §5.2: "O3 exhibits better execution time reduction than O0 in cases
    // of 2IS" — the bigger blocks give the explorer more room.
    let effort = SweepEffort {
        repeats: 2,
        max_iterations: 80,
        jobs: 0,
    };
    let reduction = |opt: OptLevel| -> f64 {
        let ms = experiment::area_sweep(
            &point(Algorithm::MultiIssue, opt),
            Benchmark::ALL,
            &effort,
            0xF18,
        );
        // loosest budget
        let xs: Vec<f64> = ms
            .iter()
            .filter(|m| m.constraint == 320_000.0)
            .map(|m| m.reduction)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(
        reduction(OptLevel::O3) > reduction(OptLevel::O0),
        "O3 must beat O0 at 2-issue"
    );
}
