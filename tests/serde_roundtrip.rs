//! Serde round-trip tests: the data structures a downstream tool would
//! persist (DFGs, candidates, patterns, reports) must survive
//! serialisation loss-free.

use isex::dfg::{NodeId, NodeSet};
use isex::prelude::*;
use isex::workloads::random::{random_dfg, RandomDfgConfig};
use rand::SeedableRng;

#[test]
fn node_set_roundtrips() {
    let mut s = NodeSet::new(100);
    for i in [0u32, 31, 32, 63, 64, 99] {
        s.insert(NodeId::new(i));
    }
    let json = serde_json::to_string(&s).unwrap();
    let back: NodeSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
    assert_eq!(back.universe(), 100);
}

#[test]
fn node_set_rejects_out_of_universe_members() {
    let err = serde_json::from_str::<NodeSet>("[4, [2, 7]]").unwrap_err();
    assert!(err.to_string().contains("outside universe"));
}

#[test]
fn program_dfg_roundtrips() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let dfg = random_dfg(
        &RandomDfgConfig {
            nodes: 25,
            width: 3,
            mem_fraction: 0.2,
            live_ins: 4,
        },
        &mut rng,
    );
    let json = serde_json::to_string(&dfg).unwrap();
    let back: ProgramDfg = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), dfg.len());
    assert_eq!(back.live_in_count(), dfg.live_in_count());
    for (id, node) in dfg.iter() {
        assert_eq!(back.node(id).payload(), node.payload());
        assert_eq!(back.node(id).operands(), node.operands());
        assert_eq!(back.node(id).is_live_out(), node.is_live_out());
        assert_eq!(
            back.succs(id).collect::<Vec<_>>(),
            dfg.succs(id).collect::<Vec<_>>(),
            "adjacency rebuilt identically"
        );
    }
}

#[test]
fn exploration_and_candidates_roundtrip() {
    let program = Benchmark::Bitcount.program(OptLevel::O3);
    let dfg = &program.hottest().dfg;
    let machine = MachineConfig::preset_2issue_4r2w();
    let params = AcoParams {
        max_iterations: 40,
        ..AcoParams::default()
    };
    let ex = MultiIssueExplorer::with_params(machine, Constraints::from_machine(&machine), params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let result = ex.explore(dfg, &mut rng);
    assert!(!result.candidates.is_empty());
    let json = serde_json::to_string(&result).unwrap();
    let back: Exploration = serde_json::from_str(&json).unwrap();
    assert_eq!(back.baseline_cycles, result.baseline_cycles);
    assert_eq!(back.cycles_with_ises, result.cycles_with_ises);
    assert_eq!(back.candidates.len(), result.candidates.len());
    for (a, b) in back.candidates.iter().zip(&result.candidates) {
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.saved_cycles, b.saved_cycles);
    }
}

#[test]
fn pattern_roundtrips_and_still_matches() {
    let program = Benchmark::Crc32.program(OptLevel::O3);
    let dfg = &program.hottest().dfg;
    let machine = MachineConfig::preset_2issue_4r2w();
    let params = AcoParams {
        max_iterations: 40,
        ..AcoParams::default()
    };
    let ex = MultiIssueExplorer::with_params(machine, Constraints::from_machine(&machine), params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let result = ex.explore(dfg, &mut rng);
    let Some(cand) = result.candidates.first() else {
        panic!("crc32 always yields a candidate");
    };
    let pattern = IsePattern::from_candidate(cand, dfg);
    let json = serde_json::to_string(&pattern).unwrap();
    let back: IsePattern = serde_json::from_str(&json).unwrap();
    // The deserialised pattern behaves identically: same matches.
    let reach = isex::dfg::Reachability::compute(dfg);
    let before: Vec<_> = pattern.find_matches(dfg, &reach);
    let after: Vec<_> = back.find_matches(dfg, &reach);
    assert_eq!(before.len(), after.len());
    for (x, y) in before.iter().zip(&after) {
        assert_eq!(x, y);
    }
}

#[test]
fn machine_and_params_roundtrip() {
    let m = MachineConfig::preset_3issue_8r4w();
    let back: MachineConfig = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(back, m);
    let p = AcoParams::default();
    let back: AcoParams = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    assert_eq!(back, p);
}

#[test]
fn measurements_serialise_for_external_plotting() {
    use isex::flow::experiment::{self, ConfigPoint, SweepEffort};
    let point = ConfigPoint {
        label: "MI(4/2, 2IS, O3)".into(),
        machine: MachineConfig::preset_2issue_4r2w(),
        opt: OptLevel::O3,
        algorithm: Algorithm::MultiIssue,
    };
    let ms = experiment::area_sweep(&point, &[Benchmark::Bitcount], &SweepEffort::quick(), 3);
    let json = serde_json::to_string_pretty(&ms).unwrap();
    let back: Vec<experiment::Measurement> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), ms.len());
    assert!(json.contains("reduction"));
}
