//! **isex** — instruction-set-extension exploration for multiple-issue
//! architectures.
//!
//! This facade crate re-exports the whole tool-chain, a faithful
//! reproduction of *Instruction Set Extension Exploration in Multiple-issue
//! Architectures* (Chen, NCTU / DATE 2008):
//!
//! | Layer | Crate | What it provides |
//! |-------|-------|------------------|
//! | [`dfg`] | `isex-dfg` | data-flow graphs, bitsets, convexity, `IN`/`OUT` ports |
//! | [`isa`] | `isex-isa` | PISA-like opcodes, Table 5.1.1, machine presets |
//! | [`sched`] | `isex-sched` | multi-issue list scheduler, critical path, `Max_AEC` |
//! | [`aco`] | `isex-aco` | pheromone trails, merit store, roulette selection |
//! | [`core`] | `isex-core` | the MI explorer (the paper) + the SI baseline |
//! | [`flow`] | `isex-flow` | profiling → exploration → merging → selection → replacement |
//! | [`workloads`] | `isex-workloads` | the seven MiBench-like kernels, random DFGs |
//! | [`serve`] | `isex-serve` | `isexd`: the HTTP exploration service (queue, cache, backpressure, async jobs) |
//! | [`store`] | `isex-store` | persistent content-addressed result store (atomic writes, LRU GC) |
//! | [`cluster`] | `isex-cluster` | distributed exploration: coordinator, workers, heartbeats, re-dispatch |
//! | [`trace`] | `isex-trace` | structured spans, Chrome-trace export, per-phase profiles |
//!
//! # Quickstart
//!
//! ```
//! use isex::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build a tiny hot block: y = ((a + b) << 3) ^ b.
//! let mut dfg = ProgramDfg::new();
//! let a = dfg.live_in();
//! let b = dfg.live_in();
//! let s = dfg.add_node(Operation::new(Opcode::Add), vec![Operand::LiveIn(a), Operand::LiveIn(b)]);
//! let t = dfg.add_node(Operation::new(Opcode::Sll), vec![Operand::Node(s), Operand::Const(3)]);
//! let y = dfg.add_node(Operation::new(Opcode::Xor), vec![Operand::Node(t), Operand::LiveIn(b)]);
//! dfg.set_live_out(y, true);
//!
//! // Explore ISEs for a 2-issue machine with a 4R/2W register file.
//! let machine = MachineConfig::preset_2issue_4r2w();
//! let explorer = MultiIssueExplorer::new(machine, Constraints::from_machine(&machine));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2008);
//! let result = explorer.explore(&dfg, &mut rng);
//! assert!(result.cycles_with_ises <= result.baseline_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isex_aco as aco;
pub use isex_cluster as cluster;
pub use isex_core as core;
pub use isex_dfg as dfg;
pub use isex_engine as engine;
pub use isex_flow as flow;
pub use isex_isa as isa;
pub use isex_sched as sched;
pub use isex_serve as serve;
pub use isex_store as store;
pub use isex_trace as trace;
pub use isex_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use isex_aco::AcoParams;
    pub use isex_core::{
        Constraints, Exploration, IseCandidate, MultiIssueExplorer, SingleIssueExplorer,
    };
    pub use isex_dfg::{Dfg, NodeId, NodeSet, Operand, Reachability};
    pub use isex_engine::{EventSink, JsonlSink, NullSink, RunMetrics};
    pub use isex_flow::{
        run_flow, run_flow_observed, Algorithm, FlowConfig, FlowReport, IsePattern,
    };
    pub use isex_isa::{MachineConfig, Opcode, Operation, ProgramDfg};
    pub use isex_sched::{list_schedule, Priority, SchedDfg, SchedOp, UnitClass};
    pub use isex_trace::Tracer;
    pub use isex_workloads::{Benchmark, OptLevel, Program};
}
