//! `isex` — command-line front-end to the ISE exploration tool-chain.
//!
//! ```text
//! isex list                                   # benchmarks and machine presets
//! isex explore --bench crc32 [options]        # run the design flow on a benchmark
//! isex asm <file.s> [options]                 # explore a basic block from assembly
//! isex serve [isexd options]                  # run the isexd exploration service
//! isex store <ls|stats|gc|clear> [options]    # inspect/maintain a result store
//! isex coordinator [options]                  # isexd fronting a worker cluster
//! isex worker --connect HOST:PORT [options]   # cluster exploration worker
//! isex top --server HOST:PORT [options]       # live one-screen run inspector
//!
//! options:
//!   --opt O0|O3            workload fidelity            (default O3)
//!   --machine PRESET       see `isex list`              (default 2is-4r2w)
//!   --algorithm mi|si      explorer                     (default mi)
//!   --seed N               RNG seed                     (default 2008)
//!   --repeats N            explorations per block       (default 3)
//!   --iters N              ACO iteration cap per round  (default 150)
//!   --area UM2             silicon-area budget
//!   --max-ises N           ISE-count budget
//!   --jobs N               exploration worker threads (0 = all cores)
//!   --bench NAME           benchmark to explore (alias for the positional)
//!   --server HOST:PORT     submit to a running isexd instead of exploring
//!                          locally (explore only; budgets/events are local)
//!   --retries N            --server only: retries on 503/connection reset
//!                          with capped exponential backoff   (default 4)
//!   --async                --server only: submit via POST /v1/jobs and
//!                          long-poll the job instead of one blocking call
//!   --checkpoint PATH      journal each finished block to PATH and resume
//!                          a matching interrupted run (local explore only)
//!   --fault-plan SPEC      deterministic fault injection, e.g.
//!                          "panic:1/8 delay:1/4:10ms" (local explore only)
//!   --metrics PATH         write RunMetrics JSON to PATH
//!   --events PATH          stream JSONL run events to PATH
//!   --trace PATH           write a Chrome-trace JSON of the run — load it
//!                          in Perfetto or chrome://tracing (local only)
//!   --profile              print the per-phase span profile after the run
//!   --verilog              emit Verilog for the selected ISEs
//!   --timeline             print the hot block's schedule before/after
//!
//! serve options (see also `isexd --help` header):
//!   --addr HOST:PORT  --workers N  --queue-cap N  --cache-cap N  --timeout-ms N
//!   --trace-dir DIR  --trace-keep N  --store-dir DIR  --store-max-bytes N
//!   --jobs-keep N
//!
//! store options:
//!   --store-dir DIR        the store to operate on (required)
//!   --max-bytes N          gc only: evict LRU entries beyond N bytes
//!
//! coordinator options (every serve option, plus):
//!   --cluster-addr HOST:PORT  --heartbeat-ms N  --heartbeat-misses N
//!   --journal-dir DIR
//!
//! worker options:
//!   --connect HOST:PORT  --name NAME  --capacity N  --trace-dir DIR
//!   --die-after-jobs N  --no-reconnect  --retry-ms N  --dial-attempts N
//!
//! top options:
//!   --server HOST:PORT     the isexd (or coordinator) to watch (required)
//!   --interval-ms N        refresh period                    (default 2000)
//!   --once                 print one snapshot and exit (no screen clearing)
//! ```

use std::process::ExitCode;

use isex::flow::select::Budgets;
use isex::prelude::*;
use isex::serve::protocol::ExploreRequest;
use isex::workloads::registry;

fn machine_presets() -> Vec<(&'static str, MachineConfig)> {
    MachineConfig::named_presets()
}

struct Options {
    opt: OptLevel,
    machine: MachineConfig,
    machine_name: String,
    algorithm: Algorithm,
    seed: u64,
    repeats: usize,
    iters: usize,
    area: Option<f64>,
    max_ises: Option<usize>,
    jobs: usize,
    bench: Option<String>,
    server: Option<String>,
    retries: usize,
    async_jobs: bool,
    checkpoint: Option<String>,
    fault_plan: Option<isex::flow::FaultPlan>,
    metrics: Option<String>,
    events: Option<String>,
    trace: Option<String>,
    profile: bool,
    verilog: bool,
    timeline: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            opt: OptLevel::O3,
            machine: MachineConfig::preset_2issue_4r2w(),
            machine_name: "2is-4r2w".to_string(),
            algorithm: Algorithm::MultiIssue,
            seed: 2008,
            repeats: 3,
            iters: 150,
            area: None,
            max_ises: None,
            jobs: 0,
            bench: None,
            server: None,
            retries: 4,
            async_jobs: false,
            checkpoint: None,
            fault_plan: None,
            metrics: None,
            events: None,
            trace: None,
            profile: false,
            verilog: false,
            timeline: false,
        }
    }
}

fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut i = 0;
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--opt" => {
                opts.opt = match need(args, i, "--opt")?.as_str() {
                    "O0" | "o0" => OptLevel::O0,
                    "O3" | "o3" => OptLevel::O3,
                    other => return Err(format!("unknown opt level `{other}`")),
                };
                i += 1;
            }
            "--machine" => {
                let name = need(args, i, "--machine")?;
                opts.machine = MachineConfig::by_name(&name)
                    .ok_or_else(|| format!("unknown machine `{name}` (try `isex list`)"))?;
                opts.machine_name = name.to_ascii_lowercase();
                i += 1;
            }
            "--algorithm" => {
                opts.algorithm = match need(args, i, "--algorithm")?.as_str() {
                    "mi" | "MI" => Algorithm::MultiIssue,
                    "si" | "SI" => Algorithm::SingleIssue,
                    other => return Err(format!("unknown algorithm `{other}`")),
                };
                i += 1;
            }
            "--seed" => {
                opts.seed = need(args, i, "--seed")?.parse().map_err(|_| "bad --seed")?;
                i += 1;
            }
            "--repeats" => {
                opts.repeats = need(args, i, "--repeats")?
                    .parse()
                    .map_err(|_| "bad --repeats")?;
                i += 1;
            }
            "--iters" => {
                opts.iters = need(args, i, "--iters")?
                    .parse()
                    .map_err(|_| "bad --iters")?;
                i += 1;
            }
            "--area" => {
                opts.area = Some(need(args, i, "--area")?.parse().map_err(|_| "bad --area")?);
                i += 1;
            }
            "--max-ises" => {
                opts.max_ises = Some(
                    need(args, i, "--max-ises")?
                        .parse()
                        .map_err(|_| "bad --max-ises")?,
                );
                i += 1;
            }
            "--jobs" => {
                opts.jobs = need(args, i, "--jobs")?.parse().map_err(|_| "bad --jobs")?;
                i += 1;
            }
            "--bench" => {
                opts.bench = Some(need(args, i, "--bench")?);
                i += 1;
            }
            "--server" => {
                opts.server = Some(need(args, i, "--server")?);
                i += 1;
            }
            "--retries" => {
                opts.retries = need(args, i, "--retries")?
                    .parse()
                    .map_err(|_| "bad --retries")?;
                i += 1;
            }
            "--checkpoint" => {
                opts.checkpoint = Some(need(args, i, "--checkpoint")?);
                i += 1;
            }
            "--fault-plan" => {
                opts.fault_plan = Some(
                    isex::flow::FaultPlan::parse(&need(args, i, "--fault-plan")?)
                        .map_err(|e| format!("bad --fault-plan: {e}"))?,
                );
                i += 1;
            }
            "--metrics" => {
                opts.metrics = Some(need(args, i, "--metrics")?);
                i += 1;
            }
            "--events" => {
                opts.events = Some(need(args, i, "--events")?);
                i += 1;
            }
            "--trace" => {
                opts.trace = Some(need(args, i, "--trace")?);
                i += 1;
            }
            "--async" => opts.async_jobs = true,
            "--profile" => opts.profile = true,
            "--verilog" => opts.verilog = true,
            "--timeline" => opts.timeline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            pos => positional.push(pos.to_string()),
        }
        i += 1;
    }
    Ok((opts, positional))
}

fn flow_config(opts: &Options) -> FlowConfig {
    let mut cfg = FlowConfig::for_machine(opts.algorithm, opts.machine);
    cfg.repeats = opts.repeats;
    cfg.params.max_iterations = opts.iters;
    cfg.jobs = opts.jobs;
    cfg.budgets = Budgets {
        area_um2: opts.area,
        max_ises: opts.max_ises,
    };
    cfg.fault_plan = opts.fault_plan.clone();
    // Tracing only observes: with or without it the report is bitwise
    // identical, so flipping --trace/--profile never changes results.
    if opts.trace.is_some() || opts.profile {
        cfg.tracer = Tracer::new();
    }
    cfg
}

/// Runs the flow with whatever observability the options ask for: an
/// optional JSONL event stream, RunMetrics JSON file, Chrome-trace export
/// and per-phase profile.
fn run_observed(opts: &Options, program: &Program) -> Result<(FlowReport, RunMetrics), String> {
    let cfg = flow_config(opts);
    let sink: Box<dyn EventSink> = match &opts.events {
        Some(path) => Box::new(JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?),
        None => Box::new(NullSink),
    };
    let (report, metrics) = match &opts.checkpoint {
        Some(path) => isex::flow::run_flow_checkpointed(
            &cfg,
            program,
            opts.seed,
            sink.as_ref(),
            &isex::flow::CancelToken::new(),
            std::path::Path::new(path),
        )
        .map_err(|e| format!("{path}: {e}"))?,
        None => run_flow_observed(&cfg, program, opts.seed, sink.as_ref()),
    };
    if let Some(path) = &opts.metrics {
        let json = serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &opts.trace {
        std::fs::write(path, cfg.tracer.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (load in Perfetto or chrome://tracing)");
    }
    Ok((report, metrics))
}

/// Prints the per-span-name aggregate collected by the run's tracer.
fn print_profile(profile: &isex::engine::PhaseProfile) {
    if profile.0.is_empty() {
        println!("\n(no phase profile recorded — the run was not traced)");
        return;
    }
    println!("\nphase profile:");
    println!(
        "  {:<20} {:>8} {:>12} {:>10}",
        "span", "count", "total ms", "max ms"
    );
    for s in &profile.0 {
        println!(
            "  {:<20} {:>8} {:>12.3} {:>10.3}",
            s.name, s.count, s.total_ms, s.max_ms
        );
    }
}

fn cmd_list() {
    println!("benchmarks:");
    for &b in Benchmark::ALL {
        println!("  {b}");
    }
    println!("\nmachine presets:");
    for (name, m) in machine_presets() {
        println!("  {name:<10} {m}");
    }
}

fn print_report(report: &FlowReport, opts: &Options) {
    print!("{}", isex::flow::report::render_text(report));
    if opts.verilog {
        for (i, sel) in report.selected.iter().enumerate() {
            println!(
                "\n{}",
                isex::flow::emit::to_verilog(&sel.pattern, &format!("asfu{i}"))
            );
        }
    }
}

fn cmd_explore(opts: &Options, positional: &[String]) -> Result<(), String> {
    let name = opts
        .bench
        .as_deref()
        .or_else(|| positional.first().map(String::as_str))
        .ok_or("explore needs a benchmark name (positional or --bench)")?;
    let bench = registry::resolve(name).map_err(|e| e.to_string())?;
    if opts.async_jobs && opts.server.is_none() {
        return Err("--async requires --server (it drives the /v1/jobs API)".to_string());
    }
    let program = bench.program(opts.opt);
    let (report, metrics) = match &opts.server {
        Some(addr) => explore_remote(addr, bench, opts)?,
        None => run_observed(opts, &program)?,
    };
    print_report(&report, opts);
    if opts.profile {
        print_profile(&metrics.phase_profile);
    }
    if opts.timeline {
        print_timeline(&program.hottest().dfg, &report, opts);
    }
    Ok(())
}

/// Submits the exploration to a running `isexd` instead of running it
/// locally. Budgets and event streams are local-only concerns; requesting
/// them alongside `--server` is an error, not a silent downgrade.
fn explore_remote(
    addr: &str,
    bench: Benchmark,
    opts: &Options,
) -> Result<(FlowReport, RunMetrics), String> {
    if opts.area.is_some() || opts.max_ises.is_some() {
        return Err(
            "--area/--max-ises are not supported with --server (the service \
                    explores with default budgets)"
                .to_string(),
        );
    }
    if opts.events.is_some() {
        return Err("--events is not supported with --server".to_string());
    }
    if opts.trace.is_some() {
        return Err("--trace is not supported with --server (start isexd with \
                    --trace-dir instead; --profile still works when the \
                    server traces its runs)"
            .to_string());
    }
    if opts.checkpoint.is_some() {
        return Err("--checkpoint is not supported with --server".to_string());
    }
    if opts.fault_plan.is_some() {
        return Err(
            "--fault-plan is not supported with --server (start isexd with \
                    --fault-plan instead)"
                .to_string(),
        );
    }
    let request = ExploreRequest {
        bench,
        opt: opts.opt,
        machine_name: opts.machine_name.clone(),
        machine: opts.machine,
        algorithm: opts.algorithm,
        seed: opts.seed,
        repeats: opts.repeats,
        effort: opts.iters,
        jobs: opts.jobs,
        timeout_ms: None,
    };
    let response = if opts.async_jobs {
        // Async path: the job survives this client's network blips — each
        // poll is a fresh bounded exchange against the same job ID.
        isex::serve::client::explore_async(addr, &request, 600_000).map_err(|e| e.to_string())?
    } else {
        let policy = isex::serve::client::RetryPolicy {
            max_retries: opts.retries,
            seed: opts.seed,
            ..Default::default()
        };
        isex::serve::client::explore_with_retry(addr, &request, &policy)
            .map_err(|e| e.to_string())?
    };
    eprintln!(
        "{} answered from {} ({})",
        addr, response.source, response.key
    );
    if let Some(path) = &opts.metrics {
        let json = serde_json::to_string_pretty(&response.metrics).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok((response.report, response.metrics))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    isex::serve::run_from_args(args)
}

/// `isex store <ls|stats|gc|clear> --store-dir DIR [--max-bytes N]`:
/// offline inspection and maintenance of a result store — the same format
/// the server reads, so it is safe to point at a live server's directory
/// (every mutation goes through the same atomic rename + manifest path).
fn cmd_store(args: &[String]) -> Result<(), String> {
    let action = args
        .first()
        .map(String::as_str)
        .ok_or("store needs an action: ls, stats, gc, clear")?;
    let mut dir: Option<String> = None;
    let mut max_bytes: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--store-dir" => {
                dir = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or("--store-dir needs a value")?,
                );
                i += 1;
            }
            "--max-bytes" => {
                max_bytes = Some(
                    args.get(i + 1)
                        .ok_or("--max-bytes needs a value")?
                        .parse()
                        .map_err(|_| "bad --max-bytes")?,
                );
                i += 1;
            }
            other => return Err(format!("unknown store flag `{other}`")),
        }
        i += 1;
    }
    let dir = dir.ok_or("store needs --store-dir DIR")?;
    // Open with no budget: maintenance must never evict as a side effect —
    // only an explicit `gc` shrinks the store.
    let store = isex::store::Store::open(std::path::Path::new(&dir), 0)
        .map_err(|e| format!("{dir}: {e}"))?;
    match action {
        "ls" => {
            println!("{:>12}  {:>8}  key", "bytes", "lru-seq");
            for e in store.entries() {
                println!("{:>12}  {:>8}  {}", e.bytes, e.last_seq, e.key);
            }
        }
        "stats" => {
            let s = store.stats();
            println!("dir:              {dir}");
            println!("entries:          {}", s.entries);
            println!("bytes:            {}", s.bytes);
            println!("manifest skipped: {}", s.manifest_skipped);
        }
        "gc" => {
            let target = max_bytes.ok_or("gc needs --max-bytes N")?;
            let evicted = store.gc_to(target).map_err(|e| e.to_string())?;
            for key in &evicted {
                println!("evicted: {key}");
            }
            let s = store.stats();
            println!(
                "{} entr{} evicted; {} entr{} / {} bytes remain",
                evicted.len(),
                if evicted.len() == 1 { "y" } else { "ies" },
                s.entries,
                if s.entries == 1 { "y" } else { "ies" },
                s.bytes
            );
        }
        "clear" => {
            let removed = store.clear().map_err(|e| e.to_string())?;
            println!("removed {removed} entries");
        }
        other => {
            return Err(format!(
                "unknown store action `{other}` (ls, stats, gc, clear)"
            ))
        }
    }
    Ok(())
}

/// `isex top --server HOST:PORT [--interval-ms N] [--once]`: a live,
/// refreshing one-screen view of a running `isexd` (plain server or
/// cluster coordinator), rendered from the same `GET /metrics` JSON
/// document a Prometheus scrape sees. Strictly read-only.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut server: Option<String> = None;
    let mut interval_ms: u64 = 2_000;
    let mut once = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                server = Some(args.get(i + 1).cloned().ok_or("--server needs a value")?);
                i += 1;
            }
            "--interval-ms" => {
                interval_ms = args
                    .get(i + 1)
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --interval-ms")?;
                i += 1;
            }
            "--once" => once = true,
            other => return Err(format!("unknown top flag `{other}`")),
        }
        i += 1;
    }
    let addr = server.ok_or("top needs --server HOST:PORT")?;
    loop {
        let raw =
            isex::serve::client::get(&addr, "/metrics").map_err(|e| format!("{addr}: {e}"))?;
        if raw.status != 200 {
            return Err(format!("{addr}: /metrics answered {}", raw.status));
        }
        let doc =
            serde_json::parse(&raw.body).map_err(|e| format!("{addr}: bad metrics JSON: {e}"))?;
        if !once {
            // Home the cursor and repaint over the previous frame.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&addr, &doc, interval_ms, once));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

fn top_walk<'v>(doc: &'v serde::Value, path: &[&str]) -> Option<&'v serde::Value> {
    let mut v = doc;
    for p in path {
        v = v.get(p)?;
    }
    Some(v)
}

fn top_num(doc: &serde::Value, path: &[&str]) -> f64 {
    match top_walk(doc, path) {
        Some(serde::Value::U64(x)) => *x as f64,
        Some(serde::Value::I64(x)) => *x as f64,
        Some(serde::Value::F64(x)) => *x,
        _ => 0.0,
    }
}

/// One frame of `isex top`. Every field is optional-tolerant: a plain
/// `isexd` has no `cluster` section, an idle one has empty latency, and
/// the screen must survive both.
fn render_top(addr: &str, doc: &serde::Value, interval_ms: u64, once: bool) -> String {
    use std::fmt::Write as _;
    let n = |path: &[&str]| top_num(doc, path);
    let mut out = String::new();
    let refresh = if once {
        String::new()
    } else {
        format!(
            "   (refresh {:.1}s, Ctrl-C to quit)",
            interval_ms as f64 / 1000.0
        )
    };
    let _ = writeln!(
        out,
        "isexd {addr} — up {:.0}s{refresh}",
        n(&["uptime_ms"]) / 1000.0
    );
    let _ = writeln!(
        out,
        "\nqueue    depth {:.0}/{:.0}   in-flight {:.0}   completed {:.0}   failed {:.0}   cancelled {:.0}",
        n(&["queue", "depth"]),
        n(&["queue", "capacity"]),
        n(&["queue", "in_flight"]),
        n(&["queue", "jobs_completed"]),
        n(&["queue", "jobs_failed"]),
        n(&["queue", "jobs_cancelled"]),
    );
    let _ = writeln!(
        out,
        "jobs     submitted {:.0}   active {:.0}   coalesced {:.0}   waiters {:.0}",
        n(&["jobs", "submitted"]),
        n(&["jobs", "active"]),
        n(&["jobs", "coalesced"]),
        n(&["jobs", "coalesced_waiters"]),
    );
    let _ = writeln!(
        out,
        "cache    hits {:.0}   misses {:.0}   hit-rate {:.1}%",
        n(&["cache", "hits"]),
        n(&["cache", "misses"]),
        100.0 * n(&["cache", "hit_rate"]),
    );
    if top_walk(doc, &["store"]).is_some() {
        let _ = writeln!(
            out,
            "store    entries {:.0}   bytes {:.0}   inserts {:.0}   evictions {:.0}",
            n(&["store", "entries"]),
            n(&["store", "bytes"]),
            n(&["store", "inserts"]),
            n(&["store", "evictions"]),
        );
    }
    let _ = writeln!(
        out,
        "latency  explore p50 {:.1}ms  p95 {:.1}ms  ({:.0} requests)",
        n(&["latency", "explore", "p50_ms"]),
        n(&["latency", "explore", "p95_ms"]),
        n(&["latency", "explore", "count"]),
    );
    if let Some(cluster) = top_walk(doc, &["cluster"]) {
        let hits = top_num(cluster, &["eval", "hits"]);
        let misses = top_num(cluster, &["eval", "misses"]);
        let rate = if hits + misses > 0.0 {
            100.0 * hits / (hits + misses)
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "\ncluster  {:.0} worker(s) alive   eval-cache hit {rate:.1}% ({hits:.0}/{:.0})",
            top_num(cluster, &["workers_alive"]),
            hits + misses,
        );
        if let Some(serde::Value::Object(workers)) = cluster.get("worker") {
            let _ = writeln!(
                out,
                "  {:<14} {:<6} {:<8} {:>9} {:>9} {:>6} {:>7} {:>9}",
                "worker", "alive", "breaker", "p50 ms", "p95 ms", "jobs", "failed", "cache-hit"
            );
            for (name, w) in workers {
                let alive = top_num(w, &["alive"]) > 0.0;
                let open = top_num(w, &["breaker_open"]) > 0.0;
                let whits = top_num(w, &["eval_cache_hits"]);
                let wmiss = top_num(w, &["eval_cache_misses"]);
                let wrate = if whits + wmiss > 0.0 {
                    format!("{:.1}%", 100.0 * whits / (whits + wmiss))
                } else {
                    "-".to_string()
                };
                let _ = writeln!(
                    out,
                    "  {:<14} {:<6} {:<8} {:>9.1} {:>9.1} {:>6.0} {:>7.0} {:>9}",
                    name,
                    if alive { "yes" } else { "DEAD" },
                    if open { "OPEN" } else { "closed" },
                    top_num(w, &["latency_p50_ms"]),
                    top_num(w, &["latency_p95_ms"]),
                    top_num(w, &["jobs_completed"]),
                    top_num(w, &["jobs_failed"]),
                    wrate,
                );
            }
        }
    }
    out
}

fn cmd_asm(opts: &Options, positional: &[String]) -> Result<(), String> {
    let path = positional.first().ok_or("asm needs a file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let dfg = isex::isa::parse::parse_block(&text).map_err(|e| e.to_string())?;
    let program = Program::new(
        format!("asm:{path}"),
        vec![isex::workloads::BasicBlock::new("block", dfg, 1)],
    );
    let (report, metrics) = run_observed(opts, &program)?;
    print_report(&report, opts);
    if opts.profile {
        print_profile(&metrics.phase_profile);
    }
    if opts.timeline {
        print_timeline(&program.hottest().dfg, &report, opts);
    }
    Ok(())
}

fn print_timeline(dfg: &ProgramDfg, report: &FlowReport, opts: &Options) {
    use isex::sched::{display, unit};
    let sched_dfg = unit::lower(dfg);
    let before = list_schedule(&sched_dfg, &opts.machine, Priority::Height);
    println!("\nhot block, before ISEs:");
    print!(
        "{}",
        display::render(&sched_dfg, &before, |id, _| dfg
            .node(id)
            .payload()
            .opcode()
            .mnemonic()
            .to_string())
    );
    let r = isex::flow::replace::replace_in_block(dfg, &report.selected, &opts.machine);
    println!(
        "after replacement: {} -> {} cycles, {} ISE instance(s)",
        r.cycles_before,
        r.cycles_after,
        r.matches.len()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: isex <list|explore|asm|serve|store|coordinator|worker|top> [options]  \
             (see src/main.rs header)"
        );
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "explore" => parse_options(rest).and_then(|(o, p)| cmd_explore(&o, &p)),
        "asm" => parse_options(rest).and_then(|(o, p)| cmd_asm(&o, &p)),
        "serve" => cmd_serve(rest),
        "store" => cmd_store(rest),
        "coordinator" => isex::cluster::coordinator_main(rest),
        "worker" => isex::cluster::worker_main(rest),
        "top" => cmd_top(rest),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
